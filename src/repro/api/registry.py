"""String-keyed scenario registry.

A *scenario* is an interpreter for :class:`~repro.api.spec.
ExperimentSpec`s: a builder callable taking a spec and returning a
:class:`~repro.api.runner.BuiltExperiment`.  Builders register under a
stable name with the :func:`scenario` decorator; :func:`repro.api.run`
dispatches on ``spec.scenario``.

Each registration also supplies a ``small_spec`` factory — a miniature
but complete spec for that scenario — which powers the tier-1 smoke
test (every registered scenario runs end-to-end in milliseconds) and
the ``python -m repro.api --scenario <name>`` CLI path.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.spec import ExperimentSpec, SpecError


class UnknownScenarioError(KeyError):
    """Lookup of a scenario name that nothing registered."""

    def __init__(self, name: str, known: List[str]):
        super().__init__(name)
        self.scenario = name
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown scenario {self.scenario!r}; registered scenarios: "
            f"{', '.join(self.known) or '(none)'}"
        )


@dataclass
class ScenarioEntry:
    """One registered scenario: builder, docs, and miniature spec/grid.

    ``small_grid`` is the campaign hook: a factory for a miniature
    sweep grid (dotted override path -> values, see
    :meth:`~repro.api.spec.ExperimentSpec.with_override`) that pairs
    with ``small_spec`` to form a complete few-cell
    :class:`~repro.campaign.CampaignSpec` for smoke tests and the
    ``--campaign-scenario`` CLI path.
    """

    name: str
    builder: Callable[[ExperimentSpec], object]
    small_spec: Optional[Callable[[], ExperimentSpec]] = None
    description: str = ""
    small_grid: Optional[Callable[[], Dict[str, list]]] = None
    #: Simulation fidelities the builder can honour
    #: (``spec.measurement.fidelity``); :func:`repro.api.run` rejects a
    #: fidelity the scenario never consults rather than running the
    #: wrong engine silently.
    fidelities: Tuple[str, ...] = ("packet",)
    #: Whether the builder consumes ``spec.population``; a population
    #: spec on any other scenario is rejected rather than ignored.
    uses_population: bool = False
    #: Registered component names (see :data:`repro.api.spec.
    #: COMPONENTS`) this builder honours beyond the summary/reconfig
    #: pair every swarm scenario interprets.  Selecting a component on
    #: a scenario that never consults it is rejected rather than
    #: ignored — the same closed-world rule the spec keys follow.
    supports: Tuple[str, ...] = ()

    @property
    def supports_transport(self) -> bool:
        """Whether the builder wires ``spec.transport`` through its senders."""
        return "transport" in self.supports


_REGISTRY: Dict[str, ScenarioEntry] = {}


def scenario(
    name: str,
    small_spec: Optional[Callable[[], ExperimentSpec]] = None,
    description: str = "",
    small_grid: Optional[Callable[[], Dict[str, list]]] = None,
    fidelities: Tuple[str, ...] = ("packet",),
    uses_population: bool = False,
    supports_transport: bool = False,
    supports: Tuple[str, ...] = (),
) -> Callable:
    """Class/function decorator registering a spec builder under ``name``.

    ``supports`` lists the registered component names the builder
    honours; ``supports_transport=True`` is the historical spelling of
    ``supports=("transport",)`` and folds into it.
    """

    def register(builder: Callable[[ExperimentSpec], object]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        doc_lines = (builder.__doc__ or "").strip().splitlines()
        supported = tuple(supports)
        if supports_transport and "transport" not in supported:
            supported += ("transport",)
        _REGISTRY[name] = ScenarioEntry(
            name=name,
            builder=builder,
            small_spec=small_spec,
            description=description or (doc_lines[0] if doc_lines else ""),
            small_grid=small_grid,
            fidelities=tuple(fidelities),
            uses_population=uses_population,
            supports=supported,
        )
        return builder

    return register


def get(name: str) -> ScenarioEntry:
    """The registry entry for ``name`` (:class:`UnknownScenarioError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, names()) from None


def names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def small_spec(name: str) -> ExperimentSpec:
    """The miniature spec registered for ``name`` (for smoke runs)."""
    entry = get(name)
    if entry.small_spec is None:
        raise SpecError(
            f"scenario {name!r} is registered but supplied no miniature "
            f"spec; pass small_spec= to its @scenario registration"
        )
    return entry.small_spec()


def small_specs() -> Dict[str, ExperimentSpec]:
    """Every scenario's miniature spec, by name."""
    return {n: _REGISTRY[n].small_spec() for n in names() if _REGISTRY[n].small_spec}


def small_grid(name: str) -> Dict[str, list]:
    """The miniature campaign grid registered for ``name`` ({} if none)."""
    entry = get(name)
    return dict(entry.small_grid()) if entry.small_grid is not None else {}


__all__ = [
    "UnknownScenarioError",
    "ScenarioEntry",
    "scenario",
    "get",
    "names",
    "small_spec",
    "small_specs",
    "small_grid",
]
