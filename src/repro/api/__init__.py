"""repro.api — the declarative experiment pipeline.

One shape for every experiment in the repo::

    from repro.api import specs, run

    spec = specs.flash_crowd(num_peers=64, seed=7)   # a frozen value
    text = spec.to_json()                             # archive / diff it
    result = run(spec)                                # -> RunResult
    print(result.metrics, result.overhead)

* :mod:`repro.api.spec` — frozen, JSON-round-trippable spec
  dataclasses (:class:`ExperimentSpec` composing :class:`SwarmSpec`,
  :class:`NodeSpec`, :class:`LinkSpec`, :class:`StrategySpec`,
  :class:`ChurnSpec`, :class:`MeasurementSpec`,
  :class:`PopulationSpec`).
* :mod:`repro.api.registry` — the string-keyed scenario registry
  (:func:`~repro.api.registry.scenario` decorator).
* :mod:`repro.api.builders` — the scenario catalog: spec constructors
  plus registered builders for the four event-driven swarm scenarios,
  the Figure 5-8 delivery layouts, and byte-level protocol sessions.
* :mod:`repro.api.runner` — :func:`build` / :func:`run`.
* :mod:`repro.api.result` — :class:`RunResult` and the shared JSON
  result schema.

``python -m repro.api --spec experiment.json`` runs a spec from disk;
``--list`` shows the registry.
"""

from repro.api import registry, specs
from repro.api.registry import UnknownScenarioError, scenario
from repro.api.result import RESULT_SCHEMA, RunResult
from repro.api.runner import BuiltExperiment, build, run
from repro.api.spec import (
    CatalogSpec,
    ChurnSpec,
    ExperimentSpec,
    LinkRuleSpec,
    LinkSpec,
    MeasurementSpec,
    NodeSpec,
    PopulationSpec,
    ReconfigSpec,
    SpecError,
    StrategySpec,
    SummarySpec,
    SwarmSpec,
    TopologySpec,
    TransportSpec,
)

__all__ = [
    "registry",
    "specs",
    "scenario",
    "UnknownScenarioError",
    "SpecError",
    "ExperimentSpec",
    "SwarmSpec",
    "TopologySpec",
    "CatalogSpec",
    "NodeSpec",
    "LinkSpec",
    "LinkRuleSpec",
    "StrategySpec",
    "SummarySpec",
    "ChurnSpec",
    "ReconfigSpec",
    "MeasurementSpec",
    "PopulationSpec",
    "TransportSpec",
    "BuiltExperiment",
    "build",
    "run",
    "RunResult",
    "RESULT_SCHEMA",
]
