"""The ``adaptive_overlay`` scenario: the paper's adaptive-vs-static claim.

The title's promise — *informed content delivery across adaptive
overlay networks* — is a comparison: an overlay that rewires its
peering from informed utility estimates should beat both a static
overlay and one that rewires blindly.  This scenario runs that
comparison as one spec: the same swarm is executed three times from
identical derived seeds, once per arm —

* ``static`` — the initial source-only peering never changes;
* ``random`` — senders are swapped uniformly at random each epoch
  (:class:`~repro.overlay.reconfiguration.RandomRewiring`);
* ``informed`` — summary-driven admission and utility rewiring under
  the spec's :class:`~repro.api.spec.ReconfigSpec` (any registered
  summary kind via ``reconfig.summary``).

The swarm is the paper's mirror environment (§1-2): two replica groups
each hold one half of the symbol space — every in-group peering is
pure redundancy, every cross-group peering is pure gain — plus a wave
of empty latecomers.  Senders deliberately use the *uninformed*
``Random`` strategy, so reception efficiency isolates the quality of
the peering decisions themselves (the strategy axis is
``summary_tradeoff``'s business; the paper's §4 point is that sketches
let receivers "immediately reject candidate senders whose content is
identical to their own").

Packet accounting is cumulative over every connection that ever
existed — :class:`~repro.overlay.simulator.SimulationReport` counters
are simulator-owned running totals, so an arm cannot improve its
reported efficiency by discarding connections along with their
redundant history.  (This scenario originally reconstructed cumulative
totals from a :class:`~repro.sim.stats.StatsRecorder` to work around
the report summing live connections only; the report itself is honest
now.)  Each arm
reports completion time, useful-symbol fraction, rewiring count, and
the control bytes its summary cards actually cost on the wire; the
headline ``informed_useful_gain`` metric is the informed arm's
useful-fraction lead over the random arm.  The ``reconfig.summary
.kind`` axis is sweepable, so a campaign turns the accuracy-vs-
overhead of informed peering into one grid.
"""

import math
import random
from typing import Dict, List

from repro.api.builders import (
    _expect_groups,
    _reconfig_policies,
    _reconfig_sim_kwargs,
    _require_swarm,
    _seeded_count,
    _source_group,
    simulator_class,
)
from repro.api.registry import scenario
from repro.api.result import RunResult
from repro.api.runner import BuiltExperiment
from repro.api.spec import (
    ChurnSpec,
    ExperimentSpec,
    MeasurementSpec,
    NodeSpec,
    ReconfigSpec,
    SpecError,
    StrategySpec,
    SwarmSpec,
)
from repro.overlay.node import OverlayNode
from repro.overlay.scenarios import default_family
from repro.overlay.simulator import OverlaySimulator, SimulationReport
from repro.overlay.topology import VirtualTopology
from repro.seeding import derive_seed
from repro.sim.stats import StatsRecorder

#: The comparison arms, in reporting order.
ARMS = ("static", "random", "informed")


def adaptive_overlay(
    mirrors_per_group: int = 4,
    joiners: int = 4,
    target: int = 100,
    wave_interval: float = 5.0,
    max_connections: int = 3,
    interval: float = 5.0,
    summary_kind: str = "",
    seed: int = 2,
    strategy_name: str = "Random",
    max_ticks: int = 10_000,
) -> ExperimentSpec:
    """Spec: static vs random vs informed rewiring over a mirror swarm.

    Args:
        mirrors_per_group: replicas in each of the two content groups.
        joiners: empty latecomers arriving in one wave.
        target: symbols each peer needs to complete.
        wave_interval: when the joiner wave lands.
        max_connections: inbound sender slots per peer.
        interval: reconfiguration epoch period (simulated time units).
        summary_kind: summary driving the informed arm ("" = the
            default min-wise calling card).
        seed: master seed; every arm derives identically from it.
        strategy_name: sender strategy, shared by all arms (the
            default uninformed ``Random`` isolates the peering axis).
    """
    if mirrors_per_group < 1:
        raise SpecError("need at least one mirror per group")
    spec = ExperimentSpec(
        scenario="adaptive_overlay",
        seed=seed,
        swarm=SwarmSpec(
            target=target,
            distinct_multiplier=1.2,
            nodes=(
                NodeSpec(name="src", count=1, role="source"),
                NodeSpec(
                    name="a",
                    count=mirrors_per_group,
                    seeding="fixed",
                    seed_fraction=0.5,
                    seed_basis="target",
                    max_connections=max_connections,
                ),
                NodeSpec(
                    name="b",
                    count=mirrors_per_group,
                    seeding="fixed",
                    seed_fraction=0.5,
                    seed_basis="target",
                    max_connections=max_connections,
                ),
                NodeSpec(
                    name="p", count=joiners, max_connections=max_connections
                ),
            ),
        ),
        strategy=StrategySpec(name=strategy_name),
        churn=ChurnSpec(join_waves=1, wave_interval=wave_interval)
        if joiners
        else None,
        reconfig=ReconfigSpec(policy="informed", interval=interval),
        measurement=MeasurementSpec(max_ticks=max_ticks),
    )
    if summary_kind:
        spec = spec.with_override("reconfig.summary.kind", summary_kind)
    return spec


def _build_arm(spec: ExperimentSpec, arm: str) -> OverlaySimulator:
    """One arm's ready-to-run simulator.

    Every arm draws the identical construction stream (same mirror
    slices, same wave schedule); runs diverge only through the
    policies' own behaviour — the controlled comparison the paper's
    argument needs.  Packet accounting rides the simulator's own
    cumulative totals, so no side recorder is needed.
    """
    swarm = _require_swarm(spec)
    src_name = _source_group(swarm).member_ids()[0]
    group_a = swarm.group("a")
    group_b = swarm.group("b")
    joiners = swarm.group("p")
    target, distinct = swarm.target, swarm.distinct_symbols

    rng = random.Random(derive_seed(spec.seed, "adaptive_overlay"))
    admission, rewiring = _reconfig_policies(spec, rng, policy=arm)
    sim = simulator_class(spec)(
        VirtualTopology(),
        default_family(),
        admission=admission,
        rewiring=rewiring,
        strategy_name=spec.strategy.name,
        rng=rng,
        **_reconfig_sim_kwargs(spec, swarm),
    )
    sim.add_node(OverlayNode(src_name, target, is_source=True))
    # The two replica groups mirror complementary half-slices of the
    # symbol space: in-group peerings offer nothing, cross-group
    # peerings offer everything (Figure 1's C/D insight, scaled up).
    shuffled = list(range(distinct))
    rng.shuffle(shuffled)
    slice_a = shuffled[: _seeded_count(group_a, target, distinct)]
    slice_b = shuffled[
        len(slice_a) : len(slice_a) + _seeded_count(group_b, target, distinct)
    ]
    for group, ids in ((group_a, slice_a), (group_b, slice_b)):
        for name in group.member_ids():
            sim.add_node(
                OverlayNode(
                    name,
                    target,
                    initial_ids=ids,
                    max_connections=group.max_connections,
                )
            )
            sim.connect(src_name, name)

    joiner_ids = list(joiners.member_ids())
    churn = spec.churn
    if churn is None or churn.join_waves < 1:
        for pid in joiner_ids:
            sim.add_node(
                OverlayNode(pid, target, max_connections=joiners.max_connections)
            )
            sim.connect(src_name, pid)
    else:
        per_wave = math.ceil(len(joiner_ids) / churn.join_waves)

        def make_wave(batch: List[str]):
            def join_wave() -> None:
                for pid in batch:
                    sim.add_node(
                        OverlayNode(
                            pid, target, max_connections=joiners.max_connections
                        )
                    )
                    sim.connect(src_name, pid)

            return join_wave

        for w in range(churn.join_waves):
            batch = joiner_ids[w * per_wave : (w + 1) * per_wave]
            if batch:
                sim.scheduler.schedule_at(
                    (w + 1) * float(churn.wave_interval) + 0.5, make_wave(batch)
                )
    return sim


@scenario(
    "adaptive_overlay",
    small_spec=lambda: adaptive_overlay(
        mirrors_per_group=4,
        joiners=4,
        target=40,
        seed=2,
        max_ticks=4_000,
    ),
    description="Static vs random vs informed rewiring over one mirror swarm",
    small_grid=lambda: {"reconfig.summary.kind": ["minwise", "bloom", "modk"]},
)
def build_adaptive_overlay(spec: ExperimentSpec) -> BuiltExperiment:
    """Run all three arms from identical seeds; report the comparison."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "a", "b", "p")
    _source_group(swarm)
    if spec.churn is not None and spec.churn.depart_node:
        raise SpecError("adaptive_overlay does not support departures")
    if spec.strategy.summary is not None:
        raise SpecError(
            "adaptive_overlay compares reconfiguration policies; select the "
            "summary through reconfig.summary, not strategy.summary"
        )
    rc = spec.reconfig if spec.reconfig is not None else ReconfigSpec()
    if rc.policy != "informed":
        raise SpecError(
            "adaptive_overlay runs every arm itself; its reconfig spec names "
            f"the informed arm's configuration, not {rc.policy!r}"
        )

    def run(built: BuiltExperiment) -> RunResult:
        metrics: Dict[str, float] = {}
        events: List[str] = []
        reports: Dict[str, SimulationReport] = {}
        series = (
            StatsRecorder(resolution=spec.measurement.resolution)
            if spec.measurement.record_series
            else None
        )
        for arm in ARMS:
            sim = _build_arm(spec, arm)
            report = sim.run(max_ticks=spec.measurement.max_ticks)
            reports[arm] = report
            fraction = report.efficiency
            metrics[f"ticks[{arm}]"] = float(report.ticks)
            metrics[f"packets_sent[{arm}]"] = float(report.packets_sent)
            metrics[f"useful_fraction[{arm}]"] = fraction
            metrics[f"reconfigurations[{arm}]"] = float(report.reconfigurations)
            metrics[f"control_bytes[{arm}]"] = float(report.control_bytes)
            events.append(
                f"{arm}: ticks={report.ticks} useful_fraction={fraction:.3f} "
                f"reconfigurations={report.reconfigurations} "
                f"control_bytes={report.control_bytes}"
            )
            if series is not None:
                series.gauge(0.0, arm, "ticks", float(report.ticks))
                series.gauge(0.0, arm, "useful_fraction", fraction)
                series.gauge(0.0, arm, "control_bytes", float(report.control_bytes))
        metrics["informed_useful_gain"] = (
            metrics["useful_fraction[informed]"] - metrics["useful_fraction[random]"]
        )
        return RunResult(
            spec=spec,
            completed=all(r.all_complete for r in reports.values()),
            metrics=metrics,
            stats=series,
            events=events,
            extras={"reports": reports},
        )

    return BuiltExperiment(spec=spec, kind="sweep", runner=run)


__all__ = ["ARMS", "adaptive_overlay"]
