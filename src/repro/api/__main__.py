"""Command-line experiment runner: ``python -m repro.api``.

Usage::

    python -m repro.api --list
    python -m repro.api --spec flash_crowd.json [--out result.json]
    python -m repro.api --scenario flash_crowd --seed 7
    python -m repro.api --scenario flash_crowd --print-spec > spec.json
    python -m repro.api --campaign sweep.json --workers 4 --out dir
    python -m repro.api --campaign sweep.json --workers 4 --out dir --resume
    python -m repro.api --campaign-scenario pair_transfer --print-spec

``--spec`` runs a JSON :class:`~repro.api.ExperimentSpec` from disk;
``--scenario`` runs a registered scenario's miniature spec (a quick
smoke / template).  ``--campaign`` runs a JSON
:class:`~repro.campaign.CampaignSpec` sweep through the parallel
campaign engine (``--workers`` processes, per-cell results plus
``campaign.json`` under ``--out``, ``--resume`` to pick up an
interrupted sweep).  Results print as the shared
:data:`~repro.api.RESULT_SCHEMA` /
:data:`~repro.campaign.CAMPAIGN_RESULT_SCHEMA` JSON, so CLI output,
benchmark dumps, and ``to_json`` are one format.

``--out`` never silently clobbers: an existing result file (or a
directory with a finished campaign) is refused unless ``--force`` —
or, for campaigns, ``--resume`` — is passed.

``--profile [FILE]`` wraps the run (single or campaign) in cProfile
and dumps pstats next to ``--out`` when no explicit path is given —
feed the dump to ``python -m pstats`` to find the hot path.
"""

import argparse
import cProfile
import dataclasses
import os
import sys
from typing import Any, Callable, List, Optional

from repro.api import registry, run
from repro.api.output import prepare_out_file
from repro.api.spec import (
    CatalogSpec,
    ExperimentSpec,
    ReconfigSpec,
    SpecError,
    SummarySpec,
    TopologySpec,
    TransportSpec,
)
from repro.reconcile import SummaryError


def _parse_kv_params(tail: str, flag: str) -> dict:
    """``param=val,...`` -> dict, shared by ``--summary``/``--reconfig``.

    Values parse as JSON scalars where possible (``8`` -> int,
    ``0.5`` -> float, ``true`` -> bool) and stay strings otherwise.
    Malformed input raises :class:`SpecError` (CLI exit status 2).
    """
    import json as _json

    params = {}
    if tail.strip():
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise SpecError(
                    f"{flag} parameter {item!r} is not of the form param=val"
                )
            try:
                params[key] = _json.loads(value.strip())
            except _json.JSONDecodeError:
                params[key] = value.strip()
    return params


def parse_summary_arg(text: str) -> SummarySpec:
    """Parse ``kind[:param=val,...]`` into a :class:`SummarySpec`."""
    kind, _, tail = text.partition(":")
    kind = kind.strip()
    if not kind:
        raise SpecError("--summary needs a summary kind before ':'")
    return SummarySpec(kind=kind, params=_parse_kv_params(tail, "--summary"))


def parse_reconfig_arg(text: str) -> ReconfigSpec:
    """Parse ``policy[:param=val,...]`` into a :class:`ReconfigSpec`.

    ``summary=<kind>`` selects the informed arm's summary kind and
    ``summary.<param>=<val>`` its build parameters; every other key maps
    to a :class:`ReconfigSpec` field (``interval``, ``jitter``,
    ``scan_budget``, ``min_usefulness``, ``hysteresis``).  Examples::

        --reconfig informed
        --reconfig informed:summary=bloom,summary.bits_per_element=8
        --reconfig random:interval=10
        --reconfig static

    Malformed input raises :class:`SpecError` (CLI exit status 2).
    """
    policy, _, tail = text.partition(":")
    policy = policy.strip()
    if not policy:
        raise SpecError("--reconfig needs a policy kind before ':'")
    fields = {}
    summary_kind = None
    summary_params = {}
    for key, parsed in _parse_kv_params(tail, "--reconfig").items():
        if key == "summary":
            summary_kind = str(parsed)
        elif key.startswith("summary."):
            summary_params[key[len("summary."):]] = parsed
        else:
            fields[key] = parsed
    if summary_params and summary_kind is None:
        raise SpecError("--reconfig summary.* parameters need summary=<kind>")
    summary = (
        SummarySpec(kind=summary_kind, params=summary_params)
        if summary_kind is not None
        else None
    )
    try:
        return ReconfigSpec(policy=policy, summary=summary, **fields)
    except TypeError as exc:
        raise SpecError(f"--reconfig: {exc}") from exc


#: ``--transport`` keys that are TransportSpec fields; every other key
#: becomes a policy parameter (e.g. ``beta`` for aimd).
_TRANSPORT_FIELDS = frozenset(
    {"bottleneck_rate", "bottleneck_buffer", "rto_min", "rto_max"}
)


def parse_transport_arg(text: str) -> TransportSpec:
    """Parse ``policy[:param=val,...]`` into a :class:`TransportSpec`.

    ``bottleneck_rate``/``bottleneck_buffer``/``rto_min``/``rto_max``
    map to :class:`TransportSpec` fields; every other key is a policy
    parameter.  Examples::

        --transport open_loop
        --transport aimd:beta=0.7,bottleneck_rate=12,bottleneck_buffer=32
        --transport bbr_lite:probe_gain=1.5

    Malformed input raises :class:`SpecError` (CLI exit status 2).
    """
    policy, _, tail = text.partition(":")
    policy = policy.strip()
    if not policy:
        raise SpecError("--transport needs a policy kind before ':'")
    fields = {}
    params = {}
    for key, parsed in _parse_kv_params(tail, "--transport").items():
        if key in _TRANSPORT_FIELDS:
            fields[key] = parsed
        else:
            params[key] = parsed
    try:
        return TransportSpec(policy=policy, params=params, **fields)
    except TypeError as exc:
        raise SpecError(f"--transport: {exc}") from exc


def parse_topology_arg(text: str) -> TopologySpec:
    """Parse ``kind[:param=val,...]`` into a :class:`TopologySpec`.

    Every key after the kind is a generator parameter.  Examples::

        --topology scale_free:attach=2
        --topology cdn_tiers:tiers=3,fanout=4
        --topology ring

    Unknown kinds and parameters raise :class:`SpecError` (CLI exit
    status 2), as does passing a topology to a scenario that wires its
    own fixed overlay.
    """
    kind, _, tail = text.partition(":")
    kind = kind.strip()
    if not kind:
        raise SpecError("--topology needs a generator kind before ':'")
    return TopologySpec(kind=kind, params=_parse_kv_params(tail, "--topology"))


def parse_catalog_arg(text: str) -> CatalogSpec:
    """Parse ``field=val,...`` into a :class:`CatalogSpec`.

    There is no kind selector — every key is a :class:`CatalogSpec`
    field.  Examples::

        --catalog objects=4
        --catalog objects=6,zipf_skew=1.2,priority_tiers=3

    Malformed input raises :class:`SpecError` (CLI exit status 2), as
    does passing a catalog to a single-object scenario.
    """
    fields = _parse_kv_params(text, "--catalog")
    try:
        return CatalogSpec(**fields)
    except TypeError as exc:
        raise SpecError(f"--catalog: {exc}") from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Run a declarative experiment spec through repro.api.run().",
        epilog=(
            "exit status: 0 = ran and completed; 1 = ran but did not reach "
            "completion (a legitimate outcome for some sweeps — the result "
            "is still printed/written); 2 = usage or spec error"
        ),
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--spec", metavar="FILE", help="path to an ExperimentSpec JSON file"
    )
    source.add_argument(
        "--scenario",
        metavar="NAME",
        help="run a registered scenario's miniature spec",
    )
    source.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    source.add_argument(
        "--campaign",
        metavar="FILE",
        help="path to a CampaignSpec JSON file: run the whole sweep",
    )
    source.add_argument(
        "--campaign-scenario",
        metavar="NAME",
        help="run a registered scenario's miniature campaign grid",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's master seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="campaign worker processes (1 = in-process, identical to serial)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="campaigns: reuse valid cell files already in the --out directory",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing --out file / finished campaign directory",
    )
    parser.add_argument(
        "--summary",
        metavar="KIND[:PARAM=VAL,...]",
        help=(
            "override the spec's summary selection, e.g. 'bloom', "
            "'art:bits_per_element=16,correction=2', 'cpi:max_discrepancy=128'"
        ),
    )
    parser.add_argument(
        "--reconfig",
        metavar="POLICY[:PARAM=VAL,...]",
        help=(
            "override the spec's overlay reconfiguration, e.g. 'static', "
            "'random:interval=10', "
            "'informed:summary=bloom,summary.bits_per_element=8,scan_budget=16'"
        ),
    )
    parser.add_argument(
        "--transport",
        metavar="POLICY[:PARAM=VAL,...]",
        help=(
            "override the spec's transport policy, e.g. 'open_loop', "
            "'aimd:beta=0.7,bottleneck_rate=12,bottleneck_buffer=32', "
            "'bbr_lite:probe_gain=1.5'"
        ),
    )
    parser.add_argument(
        "--topology",
        metavar="KIND[:PARAM=VAL,...]",
        help=(
            "override the spec's overlay topology generator, e.g. "
            "'scale_free:attach=2', 'cdn_tiers:tiers=3,fanout=4', "
            "'clustered:clusters=4', 'ring' (topology-aware scenarios only)"
        ),
    )
    parser.add_argument(
        "--catalog",
        metavar="FIELD=VAL[,...]",
        help=(
            "override the spec's multi-object catalog, e.g. "
            "'objects=4,zipf_skew=1.2,priority_tiers=2' "
            "(catalog-aware scenarios only)"
        ),
    )
    parser.add_argument(
        "--engine",
        metavar="NAME",
        help=(
            "override the spec's packet engine: 'reference' (event-faithful "
            "default) or 'columnar' (batched large-swarm engine)"
        ),
    )
    parser.add_argument(
        "--fidelity",
        metavar="NAME",
        help=(
            "override the spec's simulation fidelity: 'packet' (default) or "
            "'flow' (population-scale rate equations; population scenarios)"
        ),
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the result JSON here instead of stdout"
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        nargs="?",
        const="",
        default=None,
        help=(
            "profile the run under cProfile and dump pstats; without a "
            "value the dump lands next to --out (<out>.pstats, or "
            "profile.pstats inside a campaign directory), else "
            "profile.pstats in the working directory.  Campaign cells "
            "are covered when --workers=1 (in-process); worker "
            "subprocesses are not profiled"
        ),
    )
    parser.add_argument(
        "--series",
        action="store_true",
        help="include the full time-series rows in the result JSON",
    )
    parser.add_argument(
        "--print-spec",
        action="store_true",
        help="print the resolved spec JSON and exit without running",
    )
    return parser


def _load_spec(args: argparse.Namespace) -> ExperimentSpec:
    if args.spec:
        try:
            with open(args.spec, "r", encoding="utf-8") as fh:
                spec = ExperimentSpec.from_json(fh.read())
        except OSError as exc:
            raise SpecError(f"cannot read spec file {args.spec!r}: {exc}") from exc
    else:
        spec = registry.small_spec(args.scenario)
    if args.seed is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    if args.summary:
        spec = dataclasses.replace(
            spec,
            strategy=dataclasses.replace(
                spec.strategy, summary=parse_summary_arg(args.summary)
            ),
        )
    if args.reconfig:
        spec = dataclasses.replace(spec, reconfig=parse_reconfig_arg(args.reconfig))
    if args.transport:
        spec = dataclasses.replace(
            spec, transport=parse_transport_arg(args.transport)
        )
    if args.topology:
        spec = spec.with_component_spec("topology", parse_topology_arg(args.topology))
    if args.catalog:
        spec = spec.with_component_spec("catalog", parse_catalog_arg(args.catalog))
    # with_override validates the value (unknown engine/fidelity ->
    # SpecError -> exit status 2), unlike a bare dataclasses.replace.
    if args.engine:
        spec = spec.with_override("measurement.engine", args.engine)
    if args.fidelity:
        spec = spec.with_override("measurement.fidelity", args.fidelity)
    return spec


def _load_campaign(args: argparse.Namespace):
    """Resolve the CLI's campaign source, with seed/summary overrides."""
    from repro.campaign import campaign_spec_from_file, small_campaign

    if args.campaign:
        campaign = campaign_spec_from_file(args.campaign)
    else:
        # A scenario without a registered miniature grid has no
        # campaign to run — refuse loudly rather than sweep nothing.
        campaign = small_campaign(args.campaign_scenario, require_grid=True)
    base = campaign.base
    if args.seed is not None:
        base = dataclasses.replace(base, seed=args.seed)
    if args.summary:
        base = dataclasses.replace(
            base,
            strategy=dataclasses.replace(
                base.strategy, summary=parse_summary_arg(args.summary)
            ),
        )
    if args.reconfig:
        base = dataclasses.replace(base, reconfig=parse_reconfig_arg(args.reconfig))
    if args.transport:
        base = dataclasses.replace(
            base, transport=parse_transport_arg(args.transport)
        )
    if args.topology:
        base = base.with_component_spec("topology", parse_topology_arg(args.topology))
    if args.catalog:
        base = base.with_component_spec("catalog", parse_catalog_arg(args.catalog))
    if args.engine:
        base = base.with_override("measurement.engine", args.engine)
    if args.fidelity:
        base = base.with_override("measurement.fidelity", args.fidelity)
    if base is not campaign.base:
        campaign = dataclasses.replace(campaign, base=base)
    return campaign


def _resolve_profile_path(
    profile: Optional[str], out: Optional[str], campaign: bool
) -> Optional[str]:
    """Where ``--profile`` dumps its pstats, or None when not profiling.

    An explicit path wins; a bare ``--profile`` lands next to ``--out``
    (``<out>.pstats`` for a result file, ``profile.pstats`` inside a
    campaign directory) and falls back to ``profile.pstats`` in the
    working directory when there is no ``--out``.
    """
    if profile is None:
        return None
    if profile:
        return profile
    if out:
        if campaign:
            return os.path.join(out, "profile.pstats")
        root, _ = os.path.splitext(out)
        return root + ".pstats"
    return "profile.pstats"


def _maybe_profiled(call: Callable[[], Any], path: Optional[str]) -> Any:
    """Run ``call`` — under cProfile, dumping to ``path``, when set.

    The dump happens even when the run raises (a profile of the work up
    to the failure is exactly what a hung-run investigation needs).
    """
    if path is None:
        return call()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return call()
    finally:
        profiler.disable()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        profiler.dump_stats(path)
        print(f"wrote profile {path}", file=sys.stderr)


def _campaign_main(args: argparse.Namespace) -> int:
    """The ``--campaign`` / ``--campaign-scenario`` CLI path."""
    from repro.campaign import run_campaign

    try:
        campaign = _load_campaign(args)
        if args.print_spec:
            print(campaign.to_json())
            return 0
        result = _maybe_profiled(
            lambda: run_campaign(
                campaign,
                workers=args.workers,
                out_dir=args.out,
                resume=args.resume,
                force=args.force,
                include_series=args.series,
            ),
            _resolve_profile_path(args.profile, args.out, campaign=True),
        )
    except (SpecError, registry.UnknownScenarioError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SummaryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    label = campaign.name or campaign.base.scenario
    for cell in result.failures:
        print(f"cell {cell.cell_id} failed: {cell.error}", file=sys.stderr)
    if args.out:
        print(
            f"campaign {label}: cells={result.n_cells} ok={result.n_ok} "
            f"completed={result.n_completed} failed={result.n_failed}"
            f"\nwrote {args.out}"
        )
    else:
        print(result.to_json())
    return 0 if result.n_failed == 0 and result.n_completed == result.n_cells else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        # The markers say what each entry can drive: [spec] a miniature
        # --scenario run, [spec+grid] additionally a --campaign-scenario
        # sweep, [-] registered but with no miniature spec.
        for name in registry.names():
            entry = registry.get(name)
            if entry.small_spec is None:
                tag = "-"
            elif entry.small_grid is not None:
                tag = "spec+grid"
            else:
                tag = "spec"
            print(f"{name:26s} [{tag:9s}] {entry.description}")
        return 0
    if args.campaign or args.campaign_scenario:
        return _campaign_main(args)
    if not args.spec and not args.scenario:
        parser.print_usage(sys.stderr)
        print(
            "error: one of --spec, --scenario, --campaign, "
            "--campaign-scenario, or --list is required",
            file=sys.stderr,
        )
        return 2

    try:
        spec = _load_spec(args)
        if args.print_spec:
            print(spec.to_json())
            return 0
        if args.out:
            # Guard before spending the run: parents created, existing
            # results refused unless --force.
            prepare_out_file(args.out, force=args.force)
        result = _maybe_profiled(
            lambda: run(spec),
            _resolve_profile_path(args.profile, args.out, campaign=False),
        )
    except (SpecError, registry.UnknownScenarioError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SummaryError as exc:
        # A summary operation its structure cannot support (e.g. a
        # kind/strategy combination with no information to act on).
        print(f"error: {exc}", file=sys.stderr)
        return 2

    payload = result.to_json(include_series=args.series)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        metrics = ", ".join(
            f"{k}={v:g}" for k, v in sorted(result.metrics.items())
        )
        print(
            f"{result.scenario} seed={result.seed} "
            f"completed={result.completed} {metrics}\nwrote {args.out}"
        )
    else:
        print(payload)
    return 0 if result.completed else 1


if __name__ == "__main__":
    sys.exit(main())
