"""The ``congested_swarm`` scenario: a flash crowd behind one bottleneck.

The other swarm scenarios give every connection its own private link,
so senders never contend; this one routes *every* connection through a
single shared FIFO drop-tail :class:`~repro.transport.queue.
BottleneckQueue`, making congestion control consequential: an open-loop
swarm overdrives the queue and burns its budget on drops, while an
AIMD or BBR-lite swarm backs off and keeps the useful-delivery rate up.

The scenario therefore *requires* a transport spec with a positive
``bottleneck_rate`` — the arms of its campaign grid are transport
policy × reconfiguration policy, reproducing the paper's informed-vs-
uninformed comparison under contention rather than over ideal links.
"""

import math
import random
from typing import Callable, List

from repro.api.builders import (
    _base_simulator,
    _expect_groups,
    _initial_ids,
    _link_factory_from_rules,
    _require_swarm,
    _run_swarm,
    _schedule_departure,
    _schedule_shared_process_steps,
    _shared_processes,
    _source_group,
)
from repro.api.registry import scenario
from repro.api.result import RunResult
from repro.api.runner import BuiltExperiment
from repro.api.spec import (
    ChurnSpec,
    ExperimentSpec,
    MeasurementSpec,
    NodeSpec,
    ReconfigSpec,
    SpecError,
    StrategySpec,
    SwarmSpec,
    TransportSpec,
)
from repro.delivery.orchestrator import CandidateSender, plan_join
from repro.overlay.node import OverlayNode
from repro.sim.scenarios import SimScenario


def congested_swarm(
    num_peers: int = 24,
    target: int = 80,
    initial_seeded: int = 4,
    waves: int = 3,
    wave_interval: float = 10,
    max_connections: int = 3,
    bottleneck_rate: float = 12.0,
    bottleneck_buffer: int = 32,
    transport_policy: str = "aimd",
    reconfig_policy: str = "informed",
    seed: int = 29,
    strategy_name: str = "Recode/BF",
    max_ticks: int = 2_000,
) -> ExperimentSpec:
    """Spec: a flash crowd whose every connection shares one bottleneck.

    ``transport_policy`` picks the congestion controller
    (:func:`repro.transport.transport_policies` lists them);
    ``reconfig_policy`` picks the overlay arm (``informed`` / ``random``
    / ``static``).  Both are plain spec axes, so a campaign sweeps the
    full policy × policy grid.
    """
    if initial_seeded >= num_peers:
        raise SpecError("need at least one non-seeded peer")
    if waves < 1:
        raise SpecError("need at least one join wave")
    return ExperimentSpec(
        scenario="congested_swarm",
        seed=seed,
        swarm=SwarmSpec(
            target=target,
            distinct_multiplier=1.2,
            nodes=(
                NodeSpec(name="src", count=1, role="source"),
                NodeSpec(
                    name="seed",
                    count=initial_seeded,
                    seeding="fixed",
                    seed_fraction=0.5,
                    seed_basis="target",
                    max_connections=max_connections,
                ),
                # Joiners arrive with partial, random working sets —
                # under a shared bottleneck the interesting failure
                # mode is capacity burned on duplicates, which only
                # exists when peers already hold something.
                NodeSpec(
                    name="p",
                    count=num_peers - initial_seeded,
                    seeding="uniform",
                    seed_fraction=0.75,
                    seed_basis="target",
                    max_connections=max_connections,
                ),
            ),
        ),
        strategy=StrategySpec(name=strategy_name),
        churn=ChurnSpec(join_waves=waves, wave_interval=wave_interval),
        reconfig=ReconfigSpec(policy=reconfig_policy),
        transport=TransportSpec(
            policy=transport_policy,
            bottleneck_rate=bottleneck_rate,
            bottleneck_buffer=bottleneck_buffer,
        ),
        measurement=MeasurementSpec(max_ticks=max_ticks),
    )


def _run_congested(built: BuiltExperiment) -> RunResult:
    """The swarm runner plus the scenario's headline contention metrics."""
    result = _run_swarm(built)
    metrics = result.metrics
    if metrics.get("ticks"):
        metrics["goodput"] = metrics["packets_useful"] / metrics["ticks"]
    if metrics.get("packets_sent"):
        metrics["useful_fraction"] = (
            metrics["packets_useful"] / metrics["packets_sent"]
        )
    return result


@scenario(
    "congested_swarm",
    small_spec=lambda: congested_swarm(
        num_peers=10,
        target=40,
        initial_seeded=2,
        waves=2,
        wave_interval=5,
        bottleneck_rate=8.0,
        bottleneck_buffer=12,
        seed=9,
        max_ticks=400,
    ),
    description="A flash crowd contending for one shared bottleneck queue",
    small_grid=lambda: {
        "transport.policy": ["open_loop", "aimd"],
        "reconfig.policy": ["informed", "random"],
    },
    supports_transport=True,
)
def build_congested_swarm(spec: ExperimentSpec) -> BuiltExperiment:
    """The flash-crowd construction with a mandatory shared bottleneck."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "seed", "p")
    if spec.transport is None or spec.transport.bottleneck_rate <= 0:
        raise SpecError(
            "congested_swarm requires a transport spec with bottleneck_rate "
            "> 0 — without a shared queue there is nothing to congest; use "
            "flash_crowd for uncontended runs"
        )
    src_name = _source_group(swarm).member_ids()[0]
    seeds = swarm.group("seed")
    joiners = swarm.group("p")
    churn = spec.churn
    if churn is None or churn.join_waves < 1:
        raise SpecError(
            "congested_swarm requires a churn spec with join_waves >= 1"
        )
    target, distinct = swarm.target, swarm.distinct_symbols

    rng = random.Random(spec.seed)
    shared = _shared_processes(swarm)
    sim, family, stats = _base_simulator(
        spec, rng, link_factory=_link_factory_from_rules(swarm, shared)
    )
    scenario_obj = SimScenario("congested_swarm", sim, stats, target)

    sim.add_node(OverlayNode(src_name, target, is_source=True))
    for name in seeds.member_ids():
        ids = _initial_ids(rng, seeds, target, distinct)
        sim.add_node(
            OverlayNode(
                name, target, initial_ids=ids, max_connections=seeds.max_connections
            )
        )
        sim.connect(src_name, name)

    joiner_ids = list(joiners.member_ids())
    per_wave = math.ceil(len(joiner_ids) / churn.join_waves)
    max_connections = joiners.max_connections

    def make_wave(batch: List[str]) -> Callable[[], None]:
        def join_wave() -> None:
            now = sim.scheduler.now
            scenario_obj.events.append(f"t={now:g} wave of {len(batch)} joins")
            for pid in batch:
                ids = _initial_ids(rng, joiners, target, distinct)
                node = OverlayNode(
                    pid, target, initial_ids=ids, max_connections=max_connections
                )
                sim.add_node(node)
                candidates = [
                    CandidateSender(n.node_id, n.sketch(family), len(n.working_set))
                    for n in sim.nodes.values()
                    if not n.is_source
                    and n.node_id != pid
                    and len(n.working_set) > 0
                ]
                plan = plan_join(
                    node.sketch(family),
                    len(node.working_set),
                    candidates,
                    max_senders=max_connections,
                    symbols_desired=target,
                    rng=rng,
                    now=now,
                )
                scenario_obj.extras.setdefault("join_plans", {})[pid] = plan
                connected = 0
                for sender_id in plan.selection.chosen:
                    if sim.connect(sender_id, pid):
                        connected += 1
                if connected == 0:
                    sim.connect(src_name, pid)

        return join_wave

    # Waves land mid-tick, after tick k's delivery pass — exactly the
    # flash_crowd convention, so the two scenarios differ only in the
    # shared queue every one of these connections now drains through.
    for w in range(churn.join_waves):
        batch = joiner_ids[w * per_wave : (w + 1) * per_wave]
        if batch:
            sim.scheduler.schedule_at(
                (w + 1) * float(churn.wave_interval) + 0.5, make_wave(batch)
            )
    _schedule_departure(sim, scenario_obj, churn)
    _schedule_shared_process_steps(sim, scenario_obj, rng, shared)
    return BuiltExperiment(
        spec=spec, kind="swarm", scenario=scenario_obj, runner=_run_congested
    )


__all__ = ["congested_swarm"]
