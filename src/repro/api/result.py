"""Structured results of a spec-driven experiment run.

Every :func:`repro.api.run` returns a :class:`RunResult` with the same
shape regardless of which scenario produced it: a flat ``metrics``
mapping (the numbers a benchmark or figure would report), the richer
layer-specific objects when they exist (a swarm's
:class:`~repro.overlay.simulator.SimulationReport`, a delivery run's
:class:`~repro.delivery.transfer.TransferResult`, per-node
:class:`~repro.protocol.session.SessionStats`), the
:class:`~repro.sim.stats.StatsRecorder` time series, and the event log.

:meth:`RunResult.to_dict` is the one JSON schema
(:data:`RESULT_SCHEMA`) shared by ``RunResult.to_json``, the
``python -m repro.api`` CLI, and the ``BENCH_*.json`` files the
benchmark suite can emit — one format to archive, diff, and plot.
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.spec import ExperimentSpec
from repro.delivery.transfer import TransferResult
from repro.overlay.simulator import SimulationReport
from repro.protocol.session import SessionStats
from repro.sim.stats import StatsRecorder

#: Schema tag stamped into every serialised result.
RESULT_SCHEMA = "repro.run_result/1"


class ResultSchemaError(ValueError):
    """A serialised result does not match its declared schema."""


#: The exact key set ``RunResult.to_dict`` emits (``series`` only with
#: ``include_series=True``).  Validation is closed-world on purpose:
#: a new or renamed key is schema drift and must bump the version.
_RESULT_KEYS = {
    "schema",
    "scenario",
    "seed",
    "completed",
    "metrics",
    "events",
    "node_sessions",
    "spec",
}
_RESULT_OPTIONAL_KEYS = {"series"}


def _schema_require(condition: bool, message: str) -> None:
    if not condition:
        raise ResultSchemaError(message)


def validate_result_dict(data: Any) -> None:
    """Validate a dict against :data:`RESULT_SCHEMA` (closed-world).

    Shared by campaign ``--resume`` cell loading and the CI
    bench-baseline job (``scripts/validate_bench.py``): raises
    :class:`ResultSchemaError` on any missing, unknown, or wrongly
    typed key, so schema drift fails loudly instead of accumulating
    silently in archived results.
    """
    _schema_require(isinstance(data, dict), "result must be a JSON object")
    _schema_require(
        data.get("schema") == RESULT_SCHEMA,
        f"result schema is {data.get('schema')!r}, expected {RESULT_SCHEMA!r}",
    )
    missing = _RESULT_KEYS - set(data)
    unknown = set(data) - _RESULT_KEYS - _RESULT_OPTIONAL_KEYS
    _schema_require(not missing, f"result is missing keys {sorted(missing)}")
    _schema_require(not unknown, f"result has unknown keys {sorted(unknown)} (schema drift?)")
    _schema_require(isinstance(data["scenario"], str), "result 'scenario' must be a string")
    _schema_require(
        isinstance(data["seed"], int) and not isinstance(data["seed"], bool),
        "result 'seed' must be an integer",
    )
    _schema_require(isinstance(data["completed"], bool), "result 'completed' must be a boolean")
    _schema_require(isinstance(data["metrics"], dict), "result 'metrics' must be an object")
    for key, value in data["metrics"].items():
        _schema_require(
            isinstance(key, str)
            and isinstance(value, (int, float))
            and not isinstance(value, bool),
            f"result metric {key!r} must map a string to a number",
        )
    _schema_require(
        isinstance(data["events"], list)
        and all(isinstance(e, str) for e in data["events"]),
        "result 'events' must be an array of strings",
    )
    _schema_require(
        isinstance(data["node_sessions"], dict), "result 'node_sessions' must be an object"
    )
    _schema_require(
        isinstance(data["spec"], dict) and isinstance(data["spec"].get("scenario"), str),
        "result 'spec' must be an object naming its scenario",
    )
    if "series" in data:
        _schema_require(
            isinstance(data["series"], list)
            and all(isinstance(row, list) and len(row) == 4 for row in data["series"]),
            "result 'series' must be an array of 4-column rows",
        )


@dataclass
class RunResult:
    """The structured outcome of one :func:`repro.api.run`."""

    spec: ExperimentSpec
    completed: bool
    #: Flat numeric summary — the scenario's reportable numbers
    #: (overhead, speedup, ticks, packets...); keys are stable per
    #: scenario and shared with the serialised schema.
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Swarm runs: the overlay simulator's aggregate report.
    report: Optional[SimulationReport] = None
    #: Delivery runs: the transfer loop's outcome.
    transfer: Optional[TransferResult] = None
    #: Protocol runs: byte-accounted session stats per receiving node.
    node_sessions: Dict[str, SessionStats] = field(default_factory=dict)
    #: Time series captured during the run (None when disabled).
    stats: Optional[StatsRecorder] = None
    #: Human-readable scenario event log (waves, departures, ...).
    events: List[str] = field(default_factory=list)
    #: Scenario-specific artefacts that have no schema home (join
    #: plans, shared loss processes); not serialised.
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def scenario(self) -> str:
        return self.spec.scenario

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def overhead(self) -> Optional[float]:
        """Reception overhead: packets spent per needed symbol.

        Delivery runs report the Figure 5 metric directly; swarm runs
        report delivered packets per useful packet (1.0 = every
        delivered packet advanced a receiver).
        """
        if "overhead" in self.metrics:
            return self.metrics["overhead"]
        if self.report is not None:
            delivered = self.report.packets_sent - self.report.packets_lost
            if self.report.packets_useful:
                return delivered / self.report.packets_useful
        return None

    # -- serialisation ------------------------------------------------------

    def to_dict(self, include_series: bool = False) -> Dict[str, Any]:
        """The shared result schema (:data:`RESULT_SCHEMA`).

        ``include_series`` adds the full ``(entity, metric, time,
        value)`` time-series rows, which can be large.
        """
        out: Dict[str, Any] = {
            "schema": RESULT_SCHEMA,
            "scenario": self.scenario,
            "seed": self.seed,
            "completed": self.completed,
            "metrics": dict(sorted(self.metrics.items())),
            "events": list(self.events),
            "node_sessions": {
                node: stats.to_dict() for node, stats in sorted(self.node_sessions.items())
            },
            "spec": self.spec.to_dict(),
        }
        if include_series and self.stats is not None:
            out["series"] = [list(row) for row in self.stats.to_rows()]
        return out

    def to_json(self, indent: Optional[int] = 2, include_series: bool = False) -> str:
        return json.dumps(
            self.to_dict(include_series=include_series), indent=indent, sort_keys=True
        )


__all__ = ["RESULT_SCHEMA", "ResultSchemaError", "RunResult", "validate_result_dict"]
