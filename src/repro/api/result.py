"""Structured results of a spec-driven experiment run.

Every :func:`repro.api.run` returns a :class:`RunResult` with the same
shape regardless of which scenario produced it: a flat ``metrics``
mapping (the numbers a benchmark or figure would report), the richer
layer-specific objects when they exist (a swarm's
:class:`~repro.overlay.simulator.SimulationReport`, a delivery run's
:class:`~repro.delivery.transfer.TransferResult`, per-node
:class:`~repro.protocol.session.SessionStats`), the
:class:`~repro.sim.stats.StatsRecorder` time series, and the event log.

:meth:`RunResult.to_dict` is the one JSON schema
(:data:`RESULT_SCHEMA`) shared by ``RunResult.to_json``, the
``python -m repro.api`` CLI, and the ``BENCH_*.json`` files the
benchmark suite can emit — one format to archive, diff, and plot.
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.spec import ExperimentSpec
from repro.delivery.transfer import TransferResult
from repro.overlay.simulator import SimulationReport
from repro.protocol.session import SessionStats
from repro.sim.stats import StatsRecorder

#: Schema tag stamped into every serialised result.
RESULT_SCHEMA = "repro.run_result/1"


@dataclass
class RunResult:
    """The structured outcome of one :func:`repro.api.run`."""

    spec: ExperimentSpec
    completed: bool
    #: Flat numeric summary — the scenario's reportable numbers
    #: (overhead, speedup, ticks, packets...); keys are stable per
    #: scenario and shared with the serialised schema.
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Swarm runs: the overlay simulator's aggregate report.
    report: Optional[SimulationReport] = None
    #: Delivery runs: the transfer loop's outcome.
    transfer: Optional[TransferResult] = None
    #: Protocol runs: byte-accounted session stats per receiving node.
    node_sessions: Dict[str, SessionStats] = field(default_factory=dict)
    #: Time series captured during the run (None when disabled).
    stats: Optional[StatsRecorder] = None
    #: Human-readable scenario event log (waves, departures, ...).
    events: List[str] = field(default_factory=list)
    #: Scenario-specific artefacts that have no schema home (join
    #: plans, shared loss processes); not serialised.
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def scenario(self) -> str:
        return self.spec.scenario

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def overhead(self) -> Optional[float]:
        """Reception overhead: packets spent per needed symbol.

        Delivery runs report the Figure 5 metric directly; swarm runs
        report delivered packets per useful packet (1.0 = every
        delivered packet advanced a receiver).
        """
        if "overhead" in self.metrics:
            return self.metrics["overhead"]
        if self.report is not None:
            delivered = self.report.packets_sent - self.report.packets_lost
            if self.report.packets_useful:
                return delivered / self.report.packets_useful
        return None

    # -- serialisation ------------------------------------------------------

    def to_dict(self, include_series: bool = False) -> Dict[str, Any]:
        """The shared result schema (:data:`RESULT_SCHEMA`).

        ``include_series`` adds the full ``(entity, metric, time,
        value)`` time-series rows, which can be large.
        """
        out: Dict[str, Any] = {
            "schema": RESULT_SCHEMA,
            "scenario": self.scenario,
            "seed": self.seed,
            "completed": self.completed,
            "metrics": dict(sorted(self.metrics.items())),
            "events": list(self.events),
            "node_sessions": {
                node: stats.to_dict() for node, stats in sorted(self.node_sessions.items())
            },
            "spec": self.spec.to_dict(),
        }
        if include_series and self.stats is not None:
            out["series"] = [list(row) for row in self.stats.to_rows()]
        return out

    def to_json(self, indent: Optional[int] = 2, include_series: bool = False) -> str:
        return json.dumps(
            self.to_dict(include_series=include_series), indent=indent, sort_keys=True
        )


__all__ = ["RESULT_SCHEMA", "RunResult"]
