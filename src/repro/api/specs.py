"""Spec constructors for every registered scenario, in one namespace.

``from repro.api import specs`` then ``specs.flash_crowd(...)``,
``specs.pair_transfer(...)``, etc. — each returns a complete
:class:`~repro.api.spec.ExperimentSpec` ready for
:func:`repro.api.run` or ``spec.to_json()``.
"""

from repro.api.builders import (
    asymmetric_bandwidth_swarm,
    correlated_regional_loss,
    flash_crowd,
    multi_sender_transfer,
    pair_transfer,
    session_swarm,
    source_departure,
)

#: Alias matching the registry key (the legacy function name kept the
#: longer ``_swarm`` suffix).
asymmetric_bandwidth = asymmetric_bandwidth_swarm

__all__ = [
    "flash_crowd",
    "source_departure",
    "asymmetric_bandwidth",
    "asymmetric_bandwidth_swarm",
    "correlated_regional_loss",
    "pair_transfer",
    "multi_sender_transfer",
    "session_swarm",
]
