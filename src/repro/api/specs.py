"""Spec constructors for every registered scenario, in one namespace.

``from repro.api import specs`` then ``specs.flash_crowd(...)``,
``specs.pair_transfer(...)``, etc. — each returns a complete
:class:`~repro.api.spec.ExperimentSpec` ready for
:func:`repro.api.run` or ``spec.to_json()``.

Every constructor's name matches its registry key exactly (one
canonical name everywhere); ``asymmetric_bandwidth_swarm`` survives
only as a deprecated alias of ``asymmetric_bandwidth``.
"""

from repro.api.adaptive import adaptive_overlay
from repro.api.builders import (
    asymmetric_bandwidth,
    asymmetric_bandwidth_swarm,  # deprecated alias, warns on call
    correlated_regional_loss,
    figure1,
    flash_crowd,
    multi_sender_transfer,
    pair_transfer,
    random_overlay,
    session_swarm,
    source_departure,
)
from repro.api.congested import congested_swarm
from repro.api.population import population_flash_crowd
from repro.api.structured import cdn_catalog, scale_free_swarm
from repro.api.tradeoff import summary_tradeoff

__all__ = [
    "flash_crowd",
    "source_departure",
    "asymmetric_bandwidth",
    "asymmetric_bandwidth_swarm",
    "correlated_regional_loss",
    "pair_transfer",
    "multi_sender_transfer",
    "session_swarm",
    "summary_tradeoff",
    "figure1",
    "random_overlay",
    "adaptive_overlay",
    "congested_swarm",
    "population_flash_crowd",
    "scale_free_swarm",
    "cdn_catalog",
]
