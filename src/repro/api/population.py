"""The ``population_flash_crowd`` scenario: population-scale demand.

The paper's headline environment — flash crowds of receivers rushing
mirrored content — at the population sizes the "millions of users"
story needs.  A frozen :class:`~repro.api.spec.PopulationSpec` states
the demand side (Zipf object popularity, arrival-wave shape, seeded
mirror fraction, bandwidth tiers); ``measurement.fidelity`` picks the
engine that serves it:

* ``"flow"`` — the :class:`~repro.flow.FlowSimulator` rate-equation
  engine: cohort aggregates between epochs, real reconciliation
  summaries at every handshake, O(cohorts) per epoch at any population
  size (the 1M-peer acceptance path).
* ``"packet"`` — one per-object packet-level swarm per catalog object
  (``measurement.engine`` selects reference/columnar as usual), the
  same mirrors + arrival waves + tiered links, aggregated into the
  identical metric keys.

Both fidelities construct the *same* population from the same
deterministic apportionment (:mod:`repro.flow.demand`), so the
fidelity axis is directly sweepable in one campaign grid — the
cross-validation tests pin flow-level useful-fraction and completion
time against the packet engines on overlapping small-N cells.
"""

import random
from typing import Dict, List, Tuple

from repro.api.builders import (
    _reconfig_policies,
    _reconfig_sim_kwargs,
    _require_swarm,
    _summary_policy,
    simulator_class,
)
from repro.api.registry import scenario
from repro.api.result import RunResult
from repro.api.runner import BuiltExperiment
from repro.api.spec import (
    ExperimentSpec,
    MeasurementSpec,
    PopulationSpec,
    ReconfigSpec,
    SpecError,
    StrategySpec,
    SummarySpec,
    SwarmSpec,
)
from repro.flow.demand import apportion, tier_multipliers, wave_weights, zipf_shares
from repro.flow.engine import CohortDef, FlowSimulator
from repro.overlay.node import OverlayNode
from repro.overlay.scenarios import default_family
from repro.overlay.topology import VirtualTopology
from repro.seeding import derive_seed
from repro.sim.links import ConstantRateLink

#: Pre-seeded mirror cohorts hold this fraction of the target each, as
#: two complementary slices (the adaptive_overlay mirror environment).
MIRROR_FRACTION = 0.5


def population_flash_crowd(
    population: int = 20_000,
    target: int = 200,
    objects: int = 1,
    zipf_skew: float = 0.8,
    waves: int = 4,
    wave_profile: str = "flash",
    wave_interval: float = 10.0,
    seeded_fraction: float = 0.1,
    rate: float = 2.0,
    loss_rate: float = 0.01,
    rate_tiers: int = 2,
    rate_spread: float = 0.25,
    sample_cap: int = 256,
    max_connections: int = 3,
    interval: float = 5.0,
    fidelity: str = "flow",
    policy: str = "informed",
    summary_kind: str = "",
    seed: int = 9,
    strategy_name: str = "Random",
    max_ticks: int = 10_000,
) -> ExperimentSpec:
    """Spec: Zipf-skewed arrival waves rush mirrored objects.

    Args:
        population: total peers across every object and wave.
        target: symbols each peer needs to complete.
        objects: catalog size; audience per object follows
            ``1/rank^zipf_skew``.
        waves / wave_profile / wave_interval: the arrival process
            (empty latecomers land every ``wave_interval``, sized by
            the profile).
        seeded_fraction: share of each object's audience pre-seeded as
            two complementary half-content mirror groups.
        rate / loss_rate: per-connection goodput model (both
            fidelities; the packet engines build constant-rate links
            from it).
        rate_tiers / rate_spread: bandwidth classes per cohort.
        sample_cap: flow fidelity's sampled-ID sketch cap.
        interval: reconfiguration epoch period.
        fidelity: ``"flow"`` (population engine) or ``"packet"``.
        policy: reconfiguration arm (informed / random / static).
        summary_kind: informed arm's summary ("" = default min-wise).
        strategy_name: data-plane sender strategy (the default
            uninformed ``Random`` isolates the peering axis).
    """
    summary = (
        SummarySpec(kind=summary_kind) if summary_kind and policy == "informed" else None
    )
    if summary_kind and policy != "informed":
        raise SpecError("summary_kind applies to the informed policy only")
    return ExperimentSpec(
        scenario="population_flash_crowd",
        seed=seed,
        swarm=SwarmSpec(target=target, distinct_multiplier=1.2),
        strategy=StrategySpec(name=strategy_name),
        reconfig=ReconfigSpec(policy=policy, summary=summary, interval=interval),
        measurement=MeasurementSpec(max_ticks=max_ticks, fidelity=fidelity),
        population=PopulationSpec(
            size=population,
            objects=objects,
            zipf_skew=zipf_skew,
            waves=waves,
            wave_profile=wave_profile,
            wave_interval=wave_interval,
            seeded_fraction=seeded_fraction,
            rate=rate,
            loss_rate=loss_rate,
            rate_tiers=rate_tiers,
            rate_spread=rate_spread,
            sample_cap=sample_cap,
            max_connections=max_connections,
        ),
    )


# ---------------------------------------------------------------------------
# The shared layout: both fidelities build byte-identical populations
# ---------------------------------------------------------------------------


class _ObjectLayout:
    """One object's audience: mirrors plus timed arrival waves."""

    def __init__(self, object_id: int, members: int, pop: PopulationSpec):
        self.object_id = object_id
        self.members = members
        seeded = int(members * pop.seeded_fraction)
        self.mirror_a, self.mirror_b = apportion(seeded, [1.0, 1.0])
        joiners = members - seeded
        sizes = apportion(joiners, wave_weights(pop.wave_profile, pop.waves))
        # Waves land mid-tick (k*interval + 0.5), the catalog's join
        # convention, so packet-fidelity joiners' first packets flow on
        # the next tick.
        self.waves: List[Tuple[float, int]] = [
            ((w + 1) * float(pop.wave_interval) + 0.5, n)
            for w, n in enumerate(sizes)
            if n > 0
        ]


def _population_layout(pop: PopulationSpec) -> List[_ObjectLayout]:
    shares = zipf_shares(pop.objects, pop.zipf_skew)
    counts = apportion(pop.size, shares)
    return [
        _ObjectLayout(obj, members, pop)
        for obj, members in enumerate(counts)
        if members > 0
    ]


def _epoch_interval(spec: ExperimentSpec) -> float:
    kwargs = _reconfig_sim_kwargs(spec, _require_swarm(spec))
    return float(kwargs["reconfigure_every"])


def _population_metrics(
    spec: ExperimentSpec,
    *,
    population: int,
    peers_completed: int,
    ticks: int,
    packets_sent: float,
    packets_lost: float,
    packets_useful: float,
    completions: List[Tuple[float, int]],
    reconfigurations: int,
    reconfig_epochs: int,
    control_bytes: int,
) -> Dict[str, float]:
    """One metric vocabulary for both fidelities (the cross-validation
    campaigns difference these keys cell by cell)."""
    delivered = packets_sent - packets_lost
    metrics = {
        "population": float(population),
        "peers_completed": float(peers_completed),
        "completed_fraction": peers_completed / population if population else 0.0,
        "ticks": float(ticks),
        "packets_sent": float(packets_sent),
        "packets_lost": float(packets_lost),
        "packets_useful": float(packets_useful),
        "useful_fraction": packets_useful / delivered if delivered > 0 else 0.0,
    }
    members = sum(m for _, m in completions)
    if members:
        metrics["last_completion_tick"] = float(max(t for t, _ in completions))
        metrics["mean_completion_tick"] = (
            sum(t * m for t, m in completions) / members
        )
    if spec.reconfig is not None:
        metrics["reconfigurations"] = float(reconfigurations)
        metrics["reconfig_epochs"] = float(reconfig_epochs)
        metrics["reconfig_control_bytes"] = float(control_bytes)
    return metrics


# ---------------------------------------------------------------------------
# Flow fidelity
# ---------------------------------------------------------------------------


def _run_flow(spec: ExperimentSpec) -> RunResult:
    swarm = _require_swarm(spec)
    pop = spec.population
    assert pop is not None
    target, distinct = swarm.target, swarm.distinct_symbols
    rng = random.Random(derive_seed(spec.seed, "population_flash_crowd"))
    admission, rewiring = _reconfig_policies(spec, rng)
    rc = spec.reconfig
    cohorts: List[CohortDef] = []
    for layout in _population_layout(pop):
        obj = layout.object_id
        for name, members, slice_index in (
            (f"obj{obj}.mirror_a", layout.mirror_a, 0),
            (f"obj{obj}.mirror_b", layout.mirror_b, 1),
        ):
            if members > 0:
                cohorts.append(
                    CohortDef(
                        cohort_id=name,
                        object_id=obj,
                        members=members,
                        demand=target,
                        distinct=distinct,
                        initial_fraction=MIRROR_FRACTION,
                        slice_index=slice_index,
                    )
                )
        for w, (arrival, members) in enumerate(layout.waves):
            cohorts.append(
                CohortDef(
                    cohort_id=f"obj{obj}.wave{w}",
                    object_id=obj,
                    members=members,
                    arrival=arrival,
                    demand=target,
                    distinct=distinct,
                )
            )
    sim = FlowSimulator(
        cohorts,
        rate=pop.rate,
        loss_rate=pop.loss_rate,
        interval=_epoch_interval(spec),
        rate_tiers=pop.rate_tiers,
        rate_spread=pop.rate_spread,
        max_connections=pop.max_connections,
        admission=admission,
        rewiring=rewiring,
        scan_budget=rc.scan_budget if rc is not None else 0,
        strategy_name=spec.strategy.name,
        sample_cap=pop.sample_cap,
        rng=rng,
    )
    report = sim.run(max_ticks=spec.measurement.max_ticks)
    metrics = _population_metrics(
        spec,
        population=report.population,
        peers_completed=report.peers_completed,
        ticks=report.ticks,
        packets_sent=report.packets_sent,
        packets_lost=report.packets_lost,
        packets_useful=report.packets_useful,
        completions=report.completions,
        reconfigurations=report.reconfigurations,
        reconfig_epochs=report.reconfig_epochs,
        control_bytes=report.control_bytes,
    )
    return RunResult(
        spec=spec,
        completed=report.all_complete,
        metrics=metrics,
        events=list(report.events),
        extras={"flow_report": report},
    )


# ---------------------------------------------------------------------------
# Packet fidelity: one per-object swarm, same layout, same metric keys
# ---------------------------------------------------------------------------


def _tier_of(index: int, counts: List[int]) -> int:
    """Tier of the ``index``-th member of a group apportioned as ``counts``."""
    for tier, n in enumerate(counts):
        if index < n:
            return tier
        index -= n
    return len(counts) - 1


def _run_packet(spec: ExperimentSpec) -> RunResult:
    swarm = _require_swarm(spec)
    pop = spec.population
    assert pop is not None
    target, distinct = swarm.target, swarm.distinct_symbols
    mults = tier_multipliers(pop.rate_tiers, pop.rate_spread)
    tier_counts_cache: Dict[int, List[int]] = {}

    def tier_counts(members: int) -> List[int]:
        counts = tier_counts_cache.get(members)
        if counts is None:
            counts = apportion(members, [1.0] * len(mults))
            tier_counts_cache[members] = counts
        return counts

    totals = {
        "population": 0,
        "peers_completed": 0,
        "packets_sent": 0.0,
        "packets_lost": 0.0,
        "packets_useful": 0.0,
        "reconfigurations": 0,
        "reconfig_epochs": 0,
        "control_bytes": 0,
    }
    completions: List[Tuple[float, int]] = []
    events: List[str] = []
    ticks = 0
    all_complete = True
    for layout in _population_layout(pop):
        obj = layout.object_id
        rng = random.Random(derive_seed(spec.seed, "population_flash_crowd", obj))
        admission, rewiring = _reconfig_policies(spec, rng)
        node_mult: Dict[str, float] = {}

        def link_factory(chars, sender_id, receiver_id):
            return ConstantRateLink(
                pop.rate * node_mult.get(receiver_id, 1.0),
                loss_rate=pop.loss_rate,
            )

        sim = simulator_class(spec)(
            VirtualTopology(),
            default_family(),
            admission=admission,
            rewiring=rewiring,
            strategy_name=spec.strategy.name,
            summary_policy=_summary_policy(spec),
            rng=rng,
            link_factory=link_factory,
            **_reconfig_sim_kwargs(spec, swarm),
        )
        src = f"origin{obj}"
        sim.add_node(OverlayNode(src, target, is_source=True))
        # Complementary mirror half-slices, the adaptive_overlay idiom.
        shuffled = list(range(distinct))
        rng.shuffle(shuffled)
        half = int(target * MIRROR_FRACTION)
        slices = (shuffled[:half], shuffled[half : 2 * half])
        for group, members, ids in (
            ("a", layout.mirror_a, slices[0]),
            ("b", layout.mirror_b, slices[1]),
        ):
            counts = tier_counts(members)
            for i in range(members):
                name = f"{group}{i}"
                node_mult[name] = mults[_tier_of(i, counts)]
                sim.add_node(
                    OverlayNode(
                        name,
                        target,
                        initial_ids=ids,
                        max_connections=pop.max_connections,
                    )
                )
                sim.connect(src, name)

        def make_wave(wave: int, batch: int):
            counts = tier_counts(batch)

            def join_wave() -> None:
                events.append(
                    f"t={sim.scheduler.now:g} obj{obj} wave of {batch} joins"
                )
                for i in range(batch):
                    name = f"w{wave}p{i}"
                    node_mult[name] = mults[_tier_of(i, counts)]
                    sim.add_node(
                        OverlayNode(
                            name, target, max_connections=pop.max_connections
                        )
                    )
                    sim.connect(src, name)

            return join_wave

        for w, (arrival, batch) in enumerate(layout.waves):
            sim.scheduler.schedule_at(arrival, make_wave(w, batch))
        report = sim.run(max_ticks=spec.measurement.max_ticks)
        finished = [t for t in report.completion_ticks.values() if t is not None]
        completions.extend((float(t), 1) for t in finished)
        totals["population"] += len(report.completion_ticks)
        totals["peers_completed"] += len(finished)
        totals["packets_sent"] += report.packets_sent
        totals["packets_lost"] += report.packets_lost
        totals["packets_useful"] += report.packets_useful
        totals["reconfigurations"] += report.reconfigurations
        totals["reconfig_epochs"] += report.reconfig_epochs
        totals["control_bytes"] += report.control_bytes
        ticks = max(ticks, report.ticks)
        all_complete = all_complete and report.all_complete
    metrics = _population_metrics(
        spec,
        population=totals["population"],
        peers_completed=totals["peers_completed"],
        ticks=ticks,
        packets_sent=totals["packets_sent"],
        packets_lost=totals["packets_lost"],
        packets_useful=totals["packets_useful"],
        completions=completions,
        reconfigurations=totals["reconfigurations"],
        reconfig_epochs=totals["reconfig_epochs"],
        control_bytes=totals["control_bytes"],
    )
    return RunResult(
        spec=spec, completed=all_complete, metrics=metrics, events=events
    )


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


@scenario(
    "population_flash_crowd",
    small_spec=lambda: population_flash_crowd(
        population=16,
        target=48,
        waves=2,
        wave_interval=5.0,
        seeded_fraction=0.25,
        rate_tiers=2,
        seed=9,
        fidelity="flow",
        max_ticks=2_000,
    ),
    description="Zipf-skewed arrival waves rush mirrored objects at population scale",
    small_grid=lambda: {
        "measurement.fidelity": ["packet", "flow"],
        "reconfig.policy": ["informed", "random"],
    },
    fidelities=("packet", "flow"),
    uses_population=True,
)
def build_population_flash_crowd(spec: ExperimentSpec) -> BuiltExperiment:
    """Serve a PopulationSpec at the selected fidelity."""
    swarm = _require_swarm(spec)
    if swarm.nodes:
        raise SpecError(
            "population_flash_crowd takes its membership from the population "
            "spec; the swarm spec must declare no node groups"
        )
    if spec.population is None:
        raise SpecError("population_flash_crowd requires a population spec")
    if spec.churn is not None:
        raise SpecError(
            "population_flash_crowd schedules arrival waves from the "
            "population spec; a churn spec does not apply"
        )
    fidelity = spec.measurement.fidelity
    if fidelity == "flow":
        if spec.strategy.summary is not None:
            raise SpecError(
                "flow fidelity models transfer reconciliation in aggregate; "
                "select the control-plane summary via reconfig.summary"
            )
        if spec.reconfig is not None and spec.reconfig.jitter > 0:
            raise SpecError(
                "flow fidelity has no sub-epoch clock; reconfig jitter "
                "applies to the packet engines"
            )
        runner = _run_flow
    else:
        runner = _run_packet

    def run(built: BuiltExperiment) -> RunResult:
        return runner(built.spec)

    return BuiltExperiment(spec=spec, kind="population", runner=run)


__all__ = ["MIRROR_FRACTION", "population_flash_crowd"]
