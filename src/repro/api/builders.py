"""Scenario catalog: spec constructors and registered builders.

Each catalog entry has two halves:

* a **spec constructor** (e.g. :func:`flash_crowd`) mapping the
  scenario's natural parameters to a complete, declarative
  :class:`~repro.api.spec.ExperimentSpec` — the JSON-able value a user
  stores, diffs, and re-runs;
* a **builder** registered under the scenario's name
  (:func:`repro.api.registry.scenario`) that interprets such a spec:
  constructs topology, nodes, link models, strategies, and scheduled
  churn events, and returns a :class:`~repro.api.runner.
  BuiltExperiment` ready to :meth:`~repro.api.runner.BuiltExperiment.
  run`.

The swarm builders reproduce the legacy :mod:`repro.sim.scenarios`
constructions *exactly* (same RNG draw order from the same master
seed), which the parity tests in ``tests/api/test_api_parity.py`` pin;
the legacy functions are now deprecation shims over this module.
"""

import math
import random
from typing import Callable, Dict, List, Optional

from repro.api.registry import scenario
from repro.api.result import RunResult
from repro.api.runner import BuiltExperiment
from repro.api.spec import (
    ChurnSpec,
    ExperimentSpec,
    LinkRuleSpec,
    LinkSpec,
    MeasurementSpec,
    NodeSpec,
    SpecError,
    StrategySpec,
    SwarmSpec,
)
from repro.delivery.orchestrator import CandidateSender, plan_join
from repro.delivery.receiver import SimReceiver
from repro.delivery.scenarios import (
    COMPACT_MULTIPLIER,
    make_multi_sender_scenario,
    make_pair_scenario,
)
from repro.delivery.strategies import make_strategy
from repro.delivery.transfer import (
    simulate_multi_sender_transfer,
    simulate_p2p_transfer,
)
from repro.overlay.node import OverlayNode
from repro.overlay.reconfiguration import (
    OpenAdmission,
    RandomRewiring,
    SketchAdmission,
    SummaryScheme,
    UtilityRewiring,
)
from repro.overlay.scenarios import default_family
from repro.overlay.simulator import OverlaySimulator
from repro.overlay.topology import PathCharacteristics, VirtualTopology
from repro.protocol.peer import CodeParameters, ProtocolPeer
from repro.protocol.session import TransferSession
from repro.seeding import derive_rng
from repro.sim.engine import EventScheduler
from repro.sim.links import (
    ConstantRateLink,
    GilbertElliottLink,
    GilbertElliottProcess,
    LatencyJitterLink,
    LinkModel,
)
from repro.sim.scenarios import SimScenario
from repro.sim.sessions import (
    DEFAULT_PACKET_BUDGET_FACTOR,
    ScheduledSession,
    run_sessions,
)
from repro.sim.stats import StatsRecorder
from repro.transport import BottleneckLink, BottleneckQueue, TransportManager


# ---------------------------------------------------------------------------
# Shared construction helpers
# ---------------------------------------------------------------------------

#: The receiver's request margin over an even deficit split (decoding
#: overhead allowance plus slack for sender-domain overlap) — one
#: constant shared by the spec constructors, the builders' fallbacks,
#: and the figure sweeps in :mod:`repro.experiments.fig5678`.
DEFAULT_DESIRED_MARGIN = 1.15


def _require_swarm(spec: ExperimentSpec) -> SwarmSpec:
    if spec.swarm is None:
        raise SpecError(f"scenario {spec.scenario!r} requires a swarm spec")
    return spec.swarm


def _summary_policy(spec: ExperimentSpec):
    """The spec's summary policy, or None for the legacy hardcoded pair.

    ``None`` keeps :func:`~repro.delivery.strategies.make_strategy`,
    :class:`~repro.protocol.peer.ProtocolPeer`, and
    :class:`~repro.protocol.session.TransferSession` on their
    bit-identical historical paths — the parity tests depend on it.
    """
    if spec.strategy.summary is None:
        return None
    return spec.strategy.summary.policy()


def _source_group(swarm: SwarmSpec) -> NodeSpec:
    """The swarm's single source group (the builders honour its name
    and link-rule class; multi-source swarms are not yet expressible)."""
    sources = [g for g in swarm.nodes if g.role == "source"]
    if len(sources) != 1 or sources[0].count != 1:
        raise SpecError(
            "swarm scenarios require exactly one source group with count=1; "
            f"got {[(g.name, g.count) for g in sources]}"
        )
    return sources[0]


def _expect_groups(swarm: SwarmSpec, *names: str) -> None:
    """Require the swarm's peer groups to be exactly ``names``.

    A declared group the builder would not consume is a spec error, not
    something to drop silently.
    """
    peer_groups = [g.name for g in swarm.nodes if g.role != "source"]
    if sorted(peer_groups) != sorted(names) or len(set(peer_groups)) != len(peer_groups):
        raise SpecError(
            f"this scenario expects exactly the peer groups {sorted(names)}; "
            f"the swarm declares {peer_groups}"
        )


def _rounds_cap(max_packets: int, senders_per_round: int) -> Optional[int]:
    """Translate a total data-packet budget into a round cap.

    ``simulate_multi_sender_transfer`` caps *rounds*, and every round
    moves up to ``senders_per_round`` packets — flooring keeps the
    packet total within the spec's budget.  A budget smaller than one
    round cannot be honoured and is rejected rather than exceeded.
    """
    if not max_packets:
        return None
    if max_packets < senders_per_round:
        raise SpecError(
            f"max_packets={max_packets} is smaller than one round of "
            f"{senders_per_round} senders; raise the budget or drop senders"
        )
    return max_packets // senders_per_round


def reconfig_scheme(spec: ExperimentSpec) -> SummaryScheme:
    """The :class:`SummaryScheme` a spec's reconfig selection names.

    ``reconfig.summary`` unset resolves to the historical min-wise
    calling card — the same permutation family every overlay node
    publishes (:func:`~repro.overlay.scenarios.default_family`), so an
    informed run under the default scheme replays the pre-spec
    behaviour bit for bit.
    """
    rc = spec.reconfig
    if rc is None or rc.summary is None:
        return SummaryScheme.from_family(default_family())
    return SummaryScheme(rc.summary.kind, rc.summary.params_dict())


def _reconfig_policies(
    spec: ExperimentSpec, rng: random.Random, policy: Optional[str] = None
):
    """(admission, rewiring) for a swarm spec's reconfig selection.

    ``None`` reconfig keeps the historical informed defaults; an
    explicit selection picks the arm: ``informed`` (summary-driven
    thresholds and utility swaps), ``random`` (uninformed rewiring),
    or ``static`` (no rewiring, structural admission only).  ``policy``
    overrides the spec's own arm — the ``adaptive_overlay`` scenario
    uses it to construct every arm from one spec.
    """
    rc = spec.reconfig
    if policy is None:
        if rc is None:
            family = default_family()
            return SketchAdmission(family), UtilityRewiring(family, rng=rng)
        policy = rc.policy
    if policy == "informed":
        if rc is None:
            from repro.api.spec import ReconfigSpec

            rc = ReconfigSpec()
        scheme = reconfig_scheme(spec)
        return (
            SketchAdmission(scheme, min_usefulness=rc.min_usefulness),
            UtilityRewiring(scheme, hysteresis=rc.hysteresis, rng=rng),
        )
    if policy == "random":
        return OpenAdmission(), RandomRewiring(rng=rng)
    return OpenAdmission(), None  # static


def _reconfig_sim_kwargs(spec: ExperimentSpec, swarm: SwarmSpec) -> Dict[str, float]:
    """The epoch-scheduling kwargs every overlay builder hands the simulator."""
    rc = spec.reconfig
    return {
        "reconfigure_every": (
            rc.interval if rc is not None and rc.interval > 0 else swarm.reconfigure_every
        ),
        "reconfig_jitter": rc.jitter if rc is not None else 0.0,
        "reconfig_budget": rc.scan_budget if rc is not None else 0,
    }


def _transport_setup(
    spec: ExperimentSpec,
    stats: Optional[StatsRecorder],
    link_factory: Optional[Callable[..., LinkModel]] = None,
):
    """(extra simulator kwargs, link factory) for the spec's transport.

    ``transport`` unset returns the inputs untouched — the builders
    stay on their bit-identical historical paths.  Set, it assembles
    the subsystem: an explicit :class:`EventScheduler` (the bottleneck
    queue reads its clock), a shared :class:`BottleneckQueue` when
    ``bottleneck_rate > 0``, a :class:`TransportManager` handing each
    connection its own congestion controller, and a link factory
    wrapping every constructed link in a :class:`BottleneckLink` so all
    senders contend for the one queue.
    """
    ts = spec.transport
    if ts is None:
        return {}, link_factory
    scheduler = EventScheduler()
    queue = None
    if ts.bottleneck_rate > 0:
        queue = BottleneckQueue(
            ts.bottleneck_rate,
            ts.bottleneck_buffer,
            clock=scheduler,
            stats=stats,
        )
        base_factory = link_factory

        def bottlenecked(
            chars: PathCharacteristics, sender_id: str, receiver_id: str
        ) -> LinkModel:
            if base_factory is not None:
                inner = base_factory(chars, sender_id, receiver_id)
            else:
                inner = ConstantRateLink(chars.bandwidth, chars.loss_rate)
            return BottleneckLink(inner, queue)

        link_factory = bottlenecked
    manager = TransportManager(
        ts.policy,
        ts.params_dict(),
        rto_min=ts.rto_min,
        rto_max=ts.rto_max,
        queue=queue,
    )
    return {"scheduler": scheduler, "transport": manager}, link_factory


def _reject_reconfig(spec: ExperimentSpec) -> None:
    """Refuse a reconfig selection on a scenario with no overlay to adapt."""
    if spec.reconfig is not None:
        raise SpecError(
            f"scenario {spec.scenario!r} has no adaptive overlay; a reconfig "
            "spec applies to the swarm scenarios (flash_crowd, "
            "source_departure, asymmetric_bandwidth, correlated_regional_loss, "
            "figure1, random_overlay, adaptive_overlay)"
        )


def simulator_class(spec: ExperimentSpec):
    """The engine class ``spec.measurement.engine`` selects.

    ``"reference"`` is the event-faithful default; ``"columnar"`` is
    the batched large-swarm engine, seeded-metric-identical (the parity
    suite pins it) but built for 1k-10k node runs.
    """
    if spec.measurement.engine == "columnar":
        from repro.overlay.columnar import ColumnarOverlaySimulator

        return ColumnarOverlaySimulator
    return OverlaySimulator


def _base_simulator(
    spec: ExperimentSpec,
    rng: random.Random,
    link_factory: Optional[Callable[..., LinkModel]] = None,
):
    """The shared simulator assembly every swarm builder starts from."""
    swarm = _require_swarm(spec)
    family = default_family()
    stats = (
        StatsRecorder(resolution=spec.measurement.resolution)
        if spec.measurement.record_series
        else None
    )
    admission, rewiring = _reconfig_policies(spec, rng)
    transport_kwargs, link_factory = _transport_setup(spec, stats, link_factory)
    sim = simulator_class(spec)(
        VirtualTopology(),
        family,
        admission=admission,
        rewiring=rewiring,
        strategy_name=spec.strategy.name,
        summary_policy=_summary_policy(spec),
        rng=rng,
        link_factory=link_factory,
        stats=stats,
        **transport_kwargs,
        **_reconfig_sim_kwargs(spec, swarm),
    )
    return sim, family, stats


def _seeded_count(rule: NodeSpec, target: int, distinct: int) -> int:
    """The (upper bound on the) initial symbol count a seeding rule yields.

    ``int(basis * fraction + 1e-9)`` reproduces the legacy integer
    arithmetic (``target // 2``, ``distinct // 2``, ``target // 3``)
    for the fractions the catalog stores.
    """
    basis = target if rule.seed_basis == "target" else distinct
    return int(basis * rule.seed_fraction + 1e-9)


def _initial_ids(
    rng: random.Random, rule: NodeSpec, target: int, distinct: int
) -> List[int]:
    """Draw one member's initial working set per the group's seeding rule."""
    if rule.seeding == "empty":
        return []
    bound = _seeded_count(rule, target, distinct)
    if bound <= 0:
        return []  # a fraction too small to seed a single symbol
    if rule.seeding == "fixed":
        return rng.sample(range(distinct), bound)
    # "uniform": a uniform count in [0, bound).
    return rng.sample(range(distinct), rng.randrange(0, bound))


def _shared_process(
    link_spec: LinkSpec, shared: Dict[str, GilbertElliottProcess]
) -> GilbertElliottProcess:
    """The keyed loss chain for a spec, created once per shared key."""
    process = shared.get(link_spec.shared_key)
    if process is None:
        process = GilbertElliottProcess(
            link_spec.p_good_bad,
            link_spec.p_bad_good,
            loss_good=link_spec.loss_good,
            loss_bad=link_spec.loss_bad,
        )
        shared[link_spec.shared_key] = process
    return process


def _build_link(
    link_spec: LinkSpec, shared: Dict[str, GilbertElliottProcess]
) -> LinkModel:
    """Instantiate a link model from its spec (sharing keyed processes)."""
    if link_spec.kind == "constant":
        return ConstantRateLink(
            link_spec.rate, loss_rate=link_spec.loss_rate, latency=link_spec.latency
        )
    if link_spec.kind == "latency_jitter":
        return LatencyJitterLink(
            link_spec.rate,
            latency=link_spec.latency,
            jitter=link_spec.jitter,
            loss_rate=link_spec.loss_rate,
        )
    # gilbert_elliott
    process = _shared_process(link_spec, shared) if link_spec.shared_key else None
    return GilbertElliottLink(
        link_spec.rate,
        p_good_bad=link_spec.p_good_bad,
        p_bad_good=link_spec.p_bad_good,
        loss_good=link_spec.loss_good,
        loss_bad=link_spec.loss_bad,
        latency=link_spec.latency,
        process=process,
    )


def _node_classes(swarm: SwarmSpec) -> Dict[str, str]:
    """Concrete node id -> link-rule class, from the group definitions."""
    classes: Dict[str, str] = {}
    for group in swarm.nodes:
        for node_id in group.member_ids():
            classes[node_id] = group.node_class
    return classes


def _link_factory_from_rules(
    swarm: SwarmSpec, shared: Dict[str, GilbertElliottProcess]
) -> Optional[Callable[[PathCharacteristics, str, str], LinkModel]]:
    """A per-connection link factory applying the swarm's link rules."""
    if not swarm.links:
        return None
    classes = _node_classes(swarm)

    def factory(
        chars: PathCharacteristics, sender_id: str, receiver_id: str
    ) -> LinkModel:
        link_spec = swarm.link_for(
            classes.get(sender_id, ""), classes.get(receiver_id, "")
        )
        if link_spec is None:
            return ConstantRateLink(chars.bandwidth, chars.loss_rate)
        return _build_link(link_spec, shared)

    return factory


def _shared_processes(swarm: SwarmSpec) -> Dict[str, GilbertElliottProcess]:
    """Pre-create every keyed shared loss process the link rules name."""
    shared: Dict[str, GilbertElliottProcess] = {}
    for rule in swarm.links:
        if rule.link.kind == "gilbert_elliott" and rule.link.shared_key:
            _shared_process(rule.link, shared)
    return shared


def _schedule_shared_process_steps(
    sim: OverlaySimulator,
    scenario_obj: SimScenario,
    rng: random.Random,
    shared: Dict[str, GilbertElliottProcess],
) -> None:
    """Step each shared loss chain once per tick, logging transitions."""
    for key in sorted(shared):
        process = shared[key]
        if scenario_obj.stats is not None:
            process.attach_stats(
                scenario_obj.stats, entity=f"loss:{key}", clock=sim.scheduler
            )

        def step(process=process, key=key) -> None:
            was_bad = process.bad
            process.step(rng)
            if process.bad != was_bad:
                state = "bad" if process.bad else "good"
                scenario_obj.events.append(
                    f"t={sim.scheduler.now:g} {key} -> {state}"
                )

        sim.scheduler.schedule_every(1.0, step, first=0.5)


def _schedule_departure(
    sim: OverlaySimulator, scenario_obj: SimScenario, churn: ChurnSpec
) -> None:
    """Schedule the churn spec's departure event, if any."""
    if not churn.depart_node:
        return

    def depart() -> None:
        node = sim.remove_node(churn.depart_node)
        label = "source" if node is not None and node.is_source else churn.depart_node
        scenario_obj.events.append(f"t={sim.scheduler.now:g} {label} departed")

    sim.scheduler.schedule_at(churn.depart_at, depart)


def _swarm_metrics(report) -> Dict[str, float]:
    delivered = report.packets_sent - report.packets_lost
    metrics = {
        "ticks": float(report.ticks),
        "packets_sent": float(report.packets_sent),
        "packets_lost": float(report.packets_lost),
        "packets_useful": float(report.packets_useful),
        "reconfigurations": float(report.reconfigurations),
        "efficiency": report.efficiency,
    }
    if report.packets_useful:
        metrics["overhead"] = delivered / report.packets_useful
    finished = [t for t in report.completion_ticks.values() if t is not None]
    if finished:
        metrics["last_completion_tick"] = float(max(finished))
    return metrics


def _run_swarm(built: BuiltExperiment) -> RunResult:
    """Shared run/collect path for every swarm scenario."""
    scenario_obj = built.scenario
    assert scenario_obj is not None
    report = scenario_obj.run(max_ticks=built.spec.measurement.max_ticks)
    metrics = _swarm_metrics(report)
    if built.spec.reconfig is not None:
        # Control-plane accounting appears only under an explicit
        # reconfig selection, so default-run metric keys stay exactly
        # the pre-refactor set (parity-pinned).
        metrics["reconfig_epochs"] = float(report.reconfig_epochs)
        metrics["reconfig_control_bytes"] = float(report.control_bytes)
    if built.spec.transport is not None:
        manager = scenario_obj.simulator.transport
        if manager is not None:
            metrics.update(manager.totals())
    return RunResult(
        spec=built.spec,
        completed=report.all_complete,
        metrics=metrics,
        report=report,
        stats=scenario_obj.stats,
        events=list(scenario_obj.events),
        extras=dict(scenario_obj.extras),
    )


# ---------------------------------------------------------------------------
# Flash crowd
# ---------------------------------------------------------------------------


def flash_crowd(
    num_peers: int = 48,
    target: int = 100,
    initial_seeded: int = 4,
    waves: int = 4,
    wave_interval: float = 20,
    max_connections: int = 3,
    seed: int = 11,
    strategy_name: str = "Recode/BF",
    max_ticks: int = 10_000,
) -> ExperimentSpec:
    """Spec: waves of empty peers rush a small seeded swarm."""
    if initial_seeded >= num_peers:
        raise SpecError("need at least one non-seeded peer")
    if waves < 1:
        raise SpecError("need at least one join wave")
    return ExperimentSpec(
        scenario="flash_crowd",
        seed=seed,
        swarm=SwarmSpec(
            target=target,
            distinct_multiplier=1.2,
            nodes=(
                NodeSpec(name="src", count=1, role="source"),
                NodeSpec(
                    name="seed",
                    count=initial_seeded,
                    seeding="fixed",
                    seed_fraction=0.5,
                    seed_basis="target",
                    max_connections=max_connections,
                ),
                NodeSpec(
                    name="p",
                    count=num_peers - initial_seeded,
                    max_connections=max_connections,
                ),
            ),
        ),
        strategy=StrategySpec(name=strategy_name),
        churn=ChurnSpec(join_waves=waves, wave_interval=wave_interval),
        measurement=MeasurementSpec(max_ticks=max_ticks),
    )


@scenario(
    "flash_crowd",
    small_spec=lambda: flash_crowd(
        num_peers=10, target=40, initial_seeded=2, waves=2, wave_interval=5, seed=1
    ),
    description="Waves of empty peers rush a small seeded swarm",
    supports_transport=True,
)
def build_flash_crowd(spec: ExperimentSpec) -> BuiltExperiment:
    """Joiners run the Section 4 join decision at their scheduled time."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "seed", "p")
    src_name = _source_group(swarm).member_ids()[0]
    seeds = swarm.group("seed")
    joiners = swarm.group("p")
    churn = spec.churn
    if churn is None or churn.join_waves < 1:
        raise SpecError("flash_crowd requires a churn spec with join_waves >= 1")
    target, distinct = swarm.target, swarm.distinct_symbols

    rng = random.Random(spec.seed)
    shared = _shared_processes(swarm)
    sim, family, stats = _base_simulator(
        spec, rng, link_factory=_link_factory_from_rules(swarm, shared)
    )
    scenario_obj = SimScenario("flash_crowd", sim, stats, target)

    sim.add_node(OverlayNode(src_name, target, is_source=True))
    for name in seeds.member_ids():
        ids = _initial_ids(rng, seeds, target, distinct)
        sim.add_node(
            OverlayNode(
                name, target, initial_ids=ids, max_connections=seeds.max_connections
            )
        )
        sim.connect(src_name, name)

    joiner_ids = list(joiners.member_ids())
    per_wave = math.ceil(len(joiner_ids) / churn.join_waves)
    max_connections = joiners.max_connections

    def make_wave(batch: List[str]) -> Callable[[], None]:
        def join_wave() -> None:
            now = sim.scheduler.now
            scenario_obj.events.append(f"t={now:g} wave of {len(batch)} joins")
            for pid in batch:
                node = OverlayNode(pid, target, max_connections=max_connections)
                sim.add_node(node)
                candidates = [
                    CandidateSender(n.node_id, n.sketch(family), len(n.working_set))
                    for n in sim.nodes.values()
                    if not n.is_source
                    and n.node_id != pid
                    and len(n.working_set) > 0
                ]
                plan = plan_join(
                    node.sketch(family),
                    len(node.working_set),
                    candidates,
                    max_senders=max_connections,
                    symbols_desired=target,
                    rng=rng,
                    now=now,
                )
                scenario_obj.extras.setdefault("join_plans", {})[pid] = plan
                connected = 0
                for sender_id in plan.selection.chosen:
                    if sim.connect(sender_id, pid):
                        connected += 1
                if connected == 0:
                    sim.connect(src_name, pid)

        return join_wave

    # Waves land mid-tick (t = k*interval + 0.5): unambiguously after
    # tick k's delivery pass and before tick k+1's, so joiners' first
    # packets flow on the next tick.
    for w in range(churn.join_waves):
        batch = joiner_ids[w * per_wave : (w + 1) * per_wave]
        if batch:
            sim.scheduler.schedule_at(
                (w + 1) * float(churn.wave_interval) + 0.5, make_wave(batch)
            )
    _schedule_departure(sim, scenario_obj, churn)
    _schedule_shared_process_steps(sim, scenario_obj, rng, shared)
    return BuiltExperiment(
        spec=spec, kind="swarm", scenario=scenario_obj, runner=_run_swarm
    )


# ---------------------------------------------------------------------------
# Source departure
# ---------------------------------------------------------------------------


def source_departure(
    num_peers: int = 12,
    target: int = 120,
    depart_at: float = 10.0,
    seed: int = 23,
    strategy_name: str = "Recode/BF",
    max_ticks: int = 10_000,
) -> ExperimentSpec:
    """Spec: the only source leaves mid-transfer; the swarm finishes alone."""
    return ExperimentSpec(
        scenario="source_departure",
        seed=seed,
        swarm=SwarmSpec(
            target=target,
            distinct_multiplier=1.3,
            reconfigure_every=10,
            nodes=(
                NodeSpec(name="src", count=1, role="source"),
                NodeSpec(
                    name="p",
                    count=num_peers,
                    seeding="fixed",
                    seed_fraction=0.5,
                    seed_basis="distinct",
                    max_connections=3,
                ),
            ),
        ),
        strategy=StrategySpec(name=strategy_name),
        churn=ChurnSpec(depart_node="src", depart_at=depart_at),
        measurement=MeasurementSpec(max_ticks=max_ticks),
    )


@scenario(
    "source_departure",
    small_spec=lambda: source_departure(num_peers=6, target=60, depart_at=5.0, seed=2),
    description="The only source leaves mid-transfer; the swarm finishes alone",
    supports_transport=True,
)
def build_source_departure(spec: ExperimentSpec) -> BuiltExperiment:
    """Completion after the departure needs peer-to-peer reconciliation."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "p")
    if spec.churn is not None and spec.churn.join_waves:
        raise SpecError(
            "source_departure does not support join waves; use flash_crowd"
        )
    src_name = _source_group(swarm).member_ids()[0]
    peers = swarm.group("p")
    target, distinct = swarm.target, swarm.distinct_symbols

    rng = random.Random(spec.seed)
    shared = _shared_processes(swarm)
    sim, family, stats = _base_simulator(
        spec, rng, link_factory=_link_factory_from_rules(swarm, shared)
    )
    scenario_obj = SimScenario("source_departure", sim, stats, target)

    sim.add_node(OverlayNode(src_name, target, is_source=True))
    peer_ids = list(peers.member_ids())
    for pid in peer_ids:
        ids = _initial_ids(rng, peers, target, distinct)
        sim.add_node(
            OverlayNode(
                pid, target, initial_ids=ids, max_connections=peers.max_connections
            )
        )
        sim.connect(src_name, pid)
    # A sparse peer mesh so perpendicular capacity exists on day one.
    for i, pid in enumerate(peer_ids):
        sim.connect(peer_ids[(i + 1) % len(peer_ids)], pid)

    if spec.churn is not None:
        _schedule_departure(sim, scenario_obj, spec.churn)
    _schedule_shared_process_steps(sim, scenario_obj, rng, shared)
    return BuiltExperiment(
        spec=spec, kind="swarm", scenario=scenario_obj, runner=_run_swarm
    )


# ---------------------------------------------------------------------------
# Asymmetric bandwidth
# ---------------------------------------------------------------------------


def asymmetric_bandwidth(
    num_fast: int = 6,
    num_slow: int = 6,
    target: int = 100,
    fast_rate: float = 4.0,
    slow_rate: float = 0.7,
    slow_latency: float = 2.0,
    slow_jitter: float = 1.5,
    seed: int = 31,
    strategy_name: str = "Recode/BF",
    max_ticks: int = 10_000,
) -> ExperimentSpec:
    """Spec: a fast backbone class and a slow, jittery edge class.

    Canonical name, matching the registry key; the historical
    ``asymmetric_bandwidth_swarm`` remains as a deprecated alias.
    """
    return ExperimentSpec(
        scenario="asymmetric_bandwidth",
        seed=seed,
        swarm=SwarmSpec(
            target=target,
            distinct_multiplier=1.2,
            nodes=(
                NodeSpec(name="src", count=1, role="source", node_class="fast"),
                NodeSpec(
                    name="fast",
                    count=num_fast,
                    node_class="fast",
                    seeding="uniform",
                    seed_fraction=0.5,
                    seed_basis="target",
                    max_connections=3,
                ),
                NodeSpec(
                    name="slow",
                    count=num_slow,
                    node_class="slow",
                    seeding="uniform",
                    seed_fraction=1.0 / 3.0,
                    seed_basis="target",
                    max_connections=3,
                ),
            ),
            links=(
                LinkRuleSpec(
                    sender_class="fast",
                    link=LinkSpec(kind="constant", rate=fast_rate, loss_rate=0.005),
                ),
                LinkRuleSpec(
                    link=LinkSpec(
                        kind="latency_jitter",
                        rate=slow_rate,
                        latency=slow_latency,
                        jitter=slow_jitter,
                        loss_rate=0.02,
                    ),
                ),
            ),
        ),
        strategy=StrategySpec(name=strategy_name),
        measurement=MeasurementSpec(max_ticks=max_ticks),
    )


def asymmetric_bandwidth_swarm(*args, **kwargs) -> ExperimentSpec:
    """Deprecated alias for :func:`asymmetric_bandwidth`.

    The registry key was always ``"asymmetric_bandwidth"``; the spec
    constructor finally matches it.
    """
    import warnings

    warnings.warn(
        "asymmetric_bandwidth_swarm() is deprecated; use the canonical "
        "asymmetric_bandwidth() (same signature, same registry key)",
        DeprecationWarning,
        stacklevel=2,
    )
    return asymmetric_bandwidth(*args, **kwargs)


@scenario(
    "asymmetric_bandwidth",
    small_spec=lambda: asymmetric_bandwidth(
        num_fast=3, num_slow=3, target=40, seed=3
    ),
    description="A fast backbone class and a slow, jittery edge class in one swarm",
    supports_transport=True,
)
def build_asymmetric_bandwidth(spec: ExperimentSpec) -> BuiltExperiment:
    """Heterogeneous per-connection link models from the swarm's rules."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "fast", "slow")
    if spec.churn is not None and spec.churn.join_waves:
        raise SpecError(
            "asymmetric_bandwidth does not support join waves; use flash_crowd"
        )
    src_name = _source_group(swarm).member_ids()[0]
    fast = swarm.group("fast")
    slow = swarm.group("slow")
    target, distinct = swarm.target, swarm.distinct_symbols

    rng = random.Random(spec.seed)
    shared = _shared_processes(swarm)
    sim, family, stats = _base_simulator(
        spec, rng, link_factory=_link_factory_from_rules(swarm, shared)
    )
    scenario_obj = SimScenario("asymmetric_bandwidth", sim, stats, target)
    fast_ids = list(fast.member_ids())
    scenario_obj.extras["fast_class"] = {src_name} | set(fast_ids)

    sim.add_node(OverlayNode(src_name, target, is_source=True))
    for name in fast_ids:
        ids = _initial_ids(rng, fast, target, distinct)
        sim.add_node(
            OverlayNode(
                name, target, initial_ids=ids, max_connections=fast.max_connections
            )
        )
        sim.connect(src_name, name)
    for i, name in enumerate(slow.member_ids()):
        ids = _initial_ids(rng, slow, target, distinct)
        sim.add_node(
            OverlayNode(
                name, target, initial_ids=ids, max_connections=slow.max_connections
            )
        )
        # Edge peers bootstrap from the backbone when one exists.
        sim.connect(fast_ids[i % len(fast_ids)] if fast_ids else src_name, name)
    if spec.churn is not None:
        _schedule_departure(sim, scenario_obj, spec.churn)
    _schedule_shared_process_steps(sim, scenario_obj, rng, shared)
    return BuiltExperiment(
        spec=spec, kind="swarm", scenario=scenario_obj, runner=_run_swarm
    )


# ---------------------------------------------------------------------------
# Correlated regional loss
# ---------------------------------------------------------------------------


def correlated_regional_loss(
    peers_per_region: int = 6,
    target: int = 100,
    intra_rate: float = 2.0,
    trunk_rate: float = 2.0,
    p_good_bad: float = 0.04,
    p_bad_good: float = 0.25,
    loss_bad: float = 0.6,
    seed: int = 48,
    strategy_name: str = "Recode/BF",
    max_ticks: int = 10_000,
) -> ExperimentSpec:
    """Spec: two regions bridged by a trunk with shared bursty loss."""
    trunk = LinkSpec(
        kind="gilbert_elliott",
        rate=trunk_rate,
        latency=1.0,
        p_good_bad=p_good_bad,
        p_bad_good=p_bad_good,
        loss_good=0.0,
        loss_bad=loss_bad,
        shared_key="trunk",
    )
    return ExperimentSpec(
        scenario="correlated_regional_loss",
        seed=seed,
        swarm=SwarmSpec(
            target=target,
            distinct_multiplier=1.2,
            nodes=(
                NodeSpec(name="src", count=1, role="source", node_class="A"),
                NodeSpec(
                    name="a",
                    count=peers_per_region,
                    node_class="A",
                    seeding="uniform",
                    seed_fraction=0.5,
                    seed_basis="target",
                    max_connections=3,
                ),
                NodeSpec(
                    name="b",
                    count=peers_per_region,
                    node_class="B",
                    seeding="uniform",
                    seed_fraction=0.5,
                    seed_basis="target",
                    max_connections=3,
                ),
            ),
            links=(
                LinkRuleSpec(sender_class="A", receiver_class="B", link=trunk),
                LinkRuleSpec(sender_class="B", receiver_class="A", link=trunk),
                LinkRuleSpec(
                    link=LinkSpec(kind="constant", rate=intra_rate, loss_rate=0.005)
                ),
            ),
        ),
        strategy=StrategySpec(name=strategy_name),
        measurement=MeasurementSpec(max_ticks=max_ticks),
    )


@scenario(
    "correlated_regional_loss",
    small_spec=lambda: correlated_regional_loss(peers_per_region=3, target=40, seed=4),
    description="Two regions bridged by a trunk with shared bursty loss",
    supports_transport=True,
)
def build_correlated_regional_loss(spec: ExperimentSpec) -> BuiltExperiment:
    """All inter-region links share one Gilbert-Elliott chain."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "a", "b")
    if spec.churn is not None and spec.churn.join_waves:
        raise SpecError(
            "correlated_regional_loss does not support join waves; use flash_crowd"
        )
    src_name = _source_group(swarm).member_ids()[0]
    region_a = swarm.group("a")
    region_b = swarm.group("b")
    if region_a.count != region_b.count:
        raise SpecError(
            "correlated_regional_loss requires equal-sized region groups; "
            f"got a={region_a.count}, b={region_b.count}"
        )
    target, distinct = swarm.target, swarm.distinct_symbols

    rng = random.Random(spec.seed)
    shared = _shared_processes(swarm)
    sim, family, stats = _base_simulator(
        spec, rng, link_factory=_link_factory_from_rules(swarm, shared)
    )
    scenario_obj = SimScenario("correlated_regional_loss", sim, stats, target)
    if "trunk" in shared:
        scenario_obj.extras["trunk"] = shared["trunk"]

    sim.add_node(OverlayNode(src_name, target, is_source=True))
    a_ids = list(region_a.member_ids())
    b_ids = list(region_b.member_ids())
    for a_name, b_name in zip(a_ids, b_ids):
        a_init = _initial_ids(rng, region_a, target, distinct)
        b_init = _initial_ids(rng, region_b, target, distinct)
        sim.add_node(
            OverlayNode(
                a_name,
                target,
                initial_ids=a_init,
                max_connections=region_a.max_connections,
            )
        )
        sim.add_node(
            OverlayNode(
                b_name,
                target,
                initial_ids=b_init,
                max_connections=region_b.max_connections,
            )
        )
        sim.connect(src_name, a_name)
    # Region B reaches content through the trunk initially.
    for i, b_name in enumerate(b_ids):
        sim.connect(src_name if i == 0 else a_ids[i], b_name)
        if i > 0:
            sim.connect(b_ids[i - 1], b_name)

    if spec.churn is not None:
        _schedule_departure(sim, scenario_obj, spec.churn)
    _schedule_shared_process_steps(sim, scenario_obj, rng, shared)
    return BuiltExperiment(
        spec=spec, kind="swarm", scenario=scenario_obj, runner=_run_swarm
    )


# ---------------------------------------------------------------------------
# Delivery transfers (Figures 5-8 setups)
# ---------------------------------------------------------------------------


def pair_transfer(
    target: int = 1_000,
    multiplier: float = COMPACT_MULTIPLIER,
    correlation: float = 0.0,
    strategy_name: str = "Recode/BF",
    seed: int = 0,
    full_senders: int = 0,
    desired_margin: float = DEFAULT_DESIRED_MARGIN,
    symbols_desired: Optional[int] = None,
    bloom_bits_per_element: int = 8,
    max_packets: int = 0,
) -> ExperimentSpec:
    """Spec: the Figure 5/6 pair layout — one partial sender, one receiver.

    ``full_senders > 0`` adds equal-rate full-content senders (the
    Figure 6 speedup setting); otherwise the single partial sender runs
    to completion (the Figure 5 overhead setting).
    """
    params = {
        "correlation": correlation,
        "full_senders": full_senders,
        "desired_margin": desired_margin,
    }
    if symbols_desired is not None:
        params["symbols_desired"] = symbols_desired
    return ExperimentSpec(
        scenario="pair_transfer",
        seed=seed,
        swarm=SwarmSpec(target=target, distinct_multiplier=multiplier),
        strategy=StrategySpec(
            name=strategy_name, bloom_bits_per_element=bloom_bits_per_element
        ),
        measurement=MeasurementSpec(max_packets=max_packets),
        params=params,
    )


def _transfer_metrics(result) -> Dict[str, float]:
    return {
        "overhead": result.overhead,
        "speedup": result.speedup,
        "rounds": float(result.rounds),
        "packets_sent": float(result.packets_sent),
        "useful_needed": float(result.useful_needed),
        "receiver_final_count": float(result.receiver_final_count),
    }


@scenario(
    "pair_transfer",
    small_spec=lambda: pair_transfer(target=120, correlation=0.2, seed=5),
    description="Figure 5/6 pair layout: one partial sender, one receiver",
    small_grid=lambda: {"params.correlation": [0.0, 0.3]},
)
def build_pair_transfer(spec: ExperimentSpec) -> BuiltExperiment:
    """Compact/stretched pair layout + strategy + transfer loop."""
    swarm = _require_swarm(spec)
    _reject_reconfig(spec)

    def run(built: BuiltExperiment) -> RunResult:
        rng = random.Random(spec.seed)
        layout = make_pair_scenario(
            swarm.target,
            swarm.distinct_multiplier,
            spec.param("correlation", 0.0),
            rng,
        )
        receiver = SimReceiver(layout.receiver.ids, layout.target)
        full_senders = int(spec.param("full_senders", 0))
        deficit = layout.target - len(layout.receiver)
        desired = spec.param("symbols_desired")
        if desired is None:
            if full_senders == 0:
                desired = deficit
            else:
                desired = int(
                    math.ceil(
                        deficit / (1 + full_senders) * spec.param("desired_margin", DEFAULT_DESIRED_MARGIN)
                    )
                )
        strategy = make_strategy(
            spec.strategy.name,
            layout.sender,
            layout.receiver,
            rng,
            bloom_bits_per_element=spec.strategy.bloom_bits_per_element,
            symbols_desired=int(desired),
            summary_policy=_summary_policy(spec),
        )
        if full_senders == 0:
            result = simulate_p2p_transfer(
                receiver, strategy, max_packets=spec.measurement.max_packets or None
            )
        else:
            result = simulate_multi_sender_transfer(
                receiver,
                [strategy],
                full_senders=full_senders,
                max_rounds=_rounds_cap(
                    spec.measurement.max_packets, 1 + full_senders
                ),
            )
        return RunResult(
            spec=spec,
            completed=result.completed,
            metrics=_transfer_metrics(result),
            transfer=result,
            extras={"layout": layout, "realised_correlation": layout.correlation},
        )

    return BuiltExperiment(spec=spec, kind="transfer", runner=run)


def multi_sender_transfer(
    target: int = 1_000,
    multiplier: float = COMPACT_MULTIPLIER,
    correlation: float = 0.0,
    num_senders: int = 2,
    strategy_name: str = "Recode/BF",
    seed: int = 0,
    full_senders: int = 0,
    desired_margin: float = DEFAULT_DESIRED_MARGIN,
    bloom_bits_per_element: int = 8,
    max_packets: int = 0,
) -> ExperimentSpec:
    """Spec: the Figure 7/8 layout — parallel partial senders, shared core."""
    if num_senders < 1:
        raise SpecError("need at least one sender")
    return ExperimentSpec(
        scenario="multi_sender_transfer",
        seed=seed,
        swarm=SwarmSpec(target=target, distinct_multiplier=multiplier),
        strategy=StrategySpec(
            name=strategy_name, bloom_bits_per_element=bloom_bits_per_element
        ),
        measurement=MeasurementSpec(max_packets=max_packets),
        params={
            "correlation": correlation,
            "num_senders": num_senders,
            "full_senders": full_senders,
            "desired_margin": desired_margin,
        },
    )


@scenario(
    "multi_sender_transfer",
    small_spec=lambda: multi_sender_transfer(
        target=120, correlation=0.2, num_senders=2, seed=6
    ),
    description="Figure 7/8 layout: parallel partial senders over a shared core",
    small_grid=lambda: {"strategy.name": ["Random", "Recode/BF"]},
)
def build_multi_sender_transfer(spec: ExperimentSpec) -> BuiltExperiment:
    """Shared-core layout + per-sender strategies + round-robin loop."""
    swarm = _require_swarm(spec)
    _reject_reconfig(spec)

    def run(built: BuiltExperiment) -> RunResult:
        rng = random.Random(spec.seed)
        num_senders = int(spec.param("num_senders", 2))
        layout = make_multi_sender_scenario(
            swarm.target,
            swarm.distinct_multiplier,
            spec.param("correlation", 0.0),
            num_senders,
            rng,
        )
        receiver = SimReceiver(layout.receiver.ids, layout.target)
        deficit = layout.target - len(layout.receiver)
        desired = int(
            math.ceil(deficit / num_senders * spec.param("desired_margin", DEFAULT_DESIRED_MARGIN))
        )
        strategies = [
            make_strategy(
                spec.strategy.name,
                sender_set,
                layout.receiver,
                rng,
                bloom_bits_per_element=spec.strategy.bloom_bits_per_element,
                symbols_desired=desired,
                summary_policy=_summary_policy(spec),
            )
            for sender_set in layout.senders
        ]
        full_senders = int(spec.param("full_senders", 0))
        result = simulate_multi_sender_transfer(
            receiver,
            strategies,
            full_senders=full_senders,
            max_rounds=_rounds_cap(
                spec.measurement.max_packets, num_senders + full_senders
            ),
        )
        return RunResult(
            spec=spec,
            completed=result.completed,
            metrics=_transfer_metrics(result),
            transfer=result,
            extras={"layout": layout, "realised_correlation": layout.correlation},
        )

    return BuiltExperiment(spec=spec, kind="transfer", runner=run)


# ---------------------------------------------------------------------------
# Protocol sessions on the event clock
# ---------------------------------------------------------------------------


def session_swarm(
    num_receivers: int = 2,
    num_blocks: int = 80,
    block_size: int = 32,
    rate: float = 2.0,
    latency: float = 0.0,
    seed: int = 0,
    max_time: float = 100_000.0,
) -> ExperimentSpec:
    """Spec: one source serving N receivers with full byte-level sessions.

    Every receiver runs the complete informed protocol (handshake,
    summary, recoded payload streaming) as a
    :class:`~repro.sim.sessions.ScheduledSession` on one shared clock;
    the result carries per-node :class:`~repro.protocol.session.
    SessionStats`.
    """
    if num_receivers < 1:
        raise SpecError("need at least one receiver")
    if float(max_time) != int(max_time) or max_time < 1:
        raise SpecError(
            f"max_time must be a positive whole number of time units, got {max_time!r}"
        )
    return ExperimentSpec(
        scenario="session_swarm",
        seed=seed,
        swarm=SwarmSpec(
            target=num_blocks,
            distinct_multiplier=1.0,
            nodes=(
                NodeSpec(name="src", count=1, role="source"),
                NodeSpec(name="dst", count=num_receivers),
            ),
            links=(
                LinkRuleSpec(
                    link=LinkSpec(kind="constant", rate=rate, latency=latency)
                ),
            ),
        ),
        measurement=MeasurementSpec(max_ticks=int(max_time)),
        params={"block_size": block_size},
    )


@scenario(
    "session_swarm",
    small_spec=lambda: session_swarm(num_receivers=2, num_blocks=40, seed=7),
    description="One source serving N receivers with byte-level protocol sessions",
    supports_transport=True,
)
def build_session_swarm(spec: ExperimentSpec) -> BuiltExperiment:
    """Full-protocol sessions paced by link models on a shared clock."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "dst")
    _reject_reconfig(spec)
    if spec.churn is not None:
        raise SpecError("session_swarm does not support churn")
    session_cap = None
    if spec.measurement.max_packets:
        # The spec's budget is a swarm total, split evenly per session.
        session_cap = spec.measurement.max_packets // max(1, swarm.group("dst").count)
        if session_cap < 1:
            raise SpecError(
                f"max_packets={spec.measurement.max_packets} is smaller than "
                f"one packet per receiver"
            )
    else:
        # The per-session budget default, spec-addressable: a multiple
        # of the recovery target rather than a magic constant.
        factor = float(
            spec.param("packet_budget_factor", DEFAULT_PACKET_BUDGET_FACTOR)
        )
        if factor <= 0:
            raise SpecError(
                f"packet_budget_factor must be positive, got {factor!r}"
            )
        session_cap = max(1, int(factor * swarm.target))
    src_group = _source_group(swarm)
    src_name = src_group.member_ids()[0]
    receivers = swarm.group("dst")
    link_spec = swarm.link_for(
        src_group.node_class, receivers.node_class
    ) or LinkSpec(kind="constant", rate=2.0)

    def run(built: BuiltExperiment) -> RunResult:
        params = CodeParameters(
            num_blocks=swarm.target,
            block_size=int(spec.param("block_size", 32)),
            stream_seed=spec.seed,
        )
        content_rng = derive_rng(spec.seed, "session_swarm", "content")
        content = bytes(
            content_rng.randrange(256)
            for _ in range(params.num_blocks * params.block_size)
        )
        scheduler = EventScheduler()
        stats = (
            StatsRecorder(resolution=spec.measurement.resolution)
            if spec.measurement.record_series
            else None
        )
        policy = _summary_policy(spec)
        source = ProtocolPeer(
            src_name,
            params,
            content=content,
            rng=derive_rng(spec.seed, "session_swarm", src_name),
            summary_policy=policy,
        )
        ts = spec.transport
        queue = None
        manager = None
        if ts is not None:
            if ts.bottleneck_rate > 0:
                queue = BottleneckQueue(
                    ts.bottleneck_rate,
                    ts.bottleneck_buffer,
                    clock=scheduler,
                    stats=stats,
                )
            manager = TransportManager(
                ts.policy,
                ts.params_dict(),
                rto_min=ts.rto_min,
                rto_max=ts.rto_max,
                queue=queue,
            )
        drivers = []
        sessions = {}
        shared: Dict[str, GilbertElliottProcess] = {}
        for name in receivers.member_ids():
            peer = ProtocolPeer(
                name,
                params,
                rng=derive_rng(spec.seed, "session_swarm", name),
                summary_policy=policy,
            )
            session = TransferSession(
                source,
                peer,
                bloom_bits_per_element=spec.strategy.bloom_bits_per_element,
                rng=derive_rng(spec.seed, "session_swarm", name, "session"),
            )
            sessions[name] = session
            link = _build_link(link_spec, shared)
            if queue is not None:
                link = BottleneckLink(link, queue)
            ctrl = manager.attach(name) if manager is not None else None
            drivers.append(
                ScheduledSession(
                    scheduler,
                    session,
                    link,
                    name=name,
                    stats=stats,
                    max_packets=session_cap,
                    transport=ctrl,
                    rng=(
                        derive_rng(spec.seed, "session_swarm", name, "transport")
                        if ctrl is not None
                        else None
                    ),
                ).start()
            )
        # Keyed Gilbert-Elliott chains are shared across the sessions'
        # links and stepped once per time unit, as in the swarm builders.
        loss_rng = derive_rng(spec.seed, "session_swarm", "loss")
        for key in sorted(shared):
            process = shared[key]
            if stats is not None:
                process.attach_stats(stats, entity=f"loss:{key}", clock=scheduler)
            scheduler.schedule_every(
                1.0, lambda process=process: process.step(loss_rng), first=0.5
            )
        run_sessions(scheduler, drivers, max_time=float(spec.measurement.max_ticks))
        node_sessions = {name: s.stats for name, s in sessions.items()}
        completed = all(s.completed for s in node_sessions.values())
        durations = [
            s.duration for s in node_sessions.values() if s.duration is not None
        ]
        control = sum(s.control_bytes for s in node_sessions.values())
        data = sum(s.data_bytes for s in node_sessions.values())
        metrics = {
            "completed_sessions": float(
                sum(1 for s in node_sessions.values() if s.completed)
            ),
            "control_bytes": float(control),
            "data_bytes": float(data),
            "control_fraction": control / (control + data) if control + data else 0.0,
            "packets_sent": float(sum(d.packets_sent for d in drivers)),
        }
        if durations:
            metrics["mean_duration"] = sum(durations) / len(durations)
            metrics["max_duration"] = max(durations)
        if manager is not None:
            metrics.update(manager.totals())
        return RunResult(
            spec=spec,
            completed=completed,
            metrics=metrics,
            node_sessions=node_sessions,
            stats=stats,
            events=[
                f"t={s.finished_at:g} {name} "
                + ("decoded" if s.completed else "stopped")
                for name, s in sorted(node_sessions.items())
                if s.finished_at is not None
            ],
        )

    return BuiltExperiment(spec=spec, kind="sessions", runner=run)


# ---------------------------------------------------------------------------
# Overlay catalog ports (the legacy repro.overlay.scenarios helpers)
# ---------------------------------------------------------------------------


def figure1(
    target: int = 400,
    seed: int = 5,
    with_perpendicular: bool = True,
    strategy_name: str = "Recode/BF",
    max_ticks: int = 10_000,
) -> ExperimentSpec:
    """Spec: the paper's Figure 1 topology with working sets as captioned.

    Working sets: S full; A, B different halves; C, D, E quarters with
    C and D disjoint.  ``with_perpendicular`` adds the collaborative
    edges of Figure 1(c), subject to sketch admission.
    """
    return ExperimentSpec(
        scenario="figure1",
        seed=seed,
        swarm=SwarmSpec(target=target),
        strategy=StrategySpec(name=strategy_name),
        measurement=MeasurementSpec(max_ticks=max_ticks),
        params={"with_perpendicular": with_perpendicular},
    )


@scenario(
    "figure1",
    small_spec=lambda: figure1(target=120, seed=5),
    description="The paper's Figure 1 layout: tree vs perpendicular transfers",
    supports_transport=True,
)
def build_figure1(spec: ExperimentSpec) -> BuiltExperiment:
    """Captioned working sets + the figure's tree/perpendicular edges."""
    swarm = _require_swarm(spec)
    if spec.churn is not None:
        raise SpecError("figure1 does not support churn")
    target = swarm.target
    rng = random.Random(spec.seed)
    distinct = list(range(target))
    rng.shuffle(distinct)
    half = target // 2
    quarter = target // 4
    sets = {
        "A": distinct[:half],
        "B": distinct[half:],
        "C": distinct[:quarter],
        "D": distinct[quarter : 2 * quarter],  # disjoint from C
        "E": distinct[half : half + quarter],
    }
    family = default_family()
    stats = (
        StatsRecorder(resolution=spec.measurement.resolution)
        if spec.measurement.record_series
        else None
    )
    if spec.reconfig is None:
        # The figure contrasts fixed layouts: admission only, no
        # rewiring (the historical construction, shim-parity-pinned).
        admission, rewiring = SketchAdmission(family), None
    else:
        admission, rewiring = _reconfig_policies(spec, rng)
    transport_kwargs, link_factory = _transport_setup(spec, stats)
    sim = simulator_class(spec)(
        VirtualTopology(),
        family,
        admission=admission,
        rewiring=rewiring,
        strategy_name=spec.strategy.name,
        summary_policy=_summary_policy(spec),
        rng=rng,
        link_factory=link_factory,
        stats=stats,
        **transport_kwargs,
        **_reconfig_sim_kwargs(spec, swarm),
    )
    scenario_obj = SimScenario("figure1", sim, stats, target)
    sim.add_node(OverlayNode("S", target, is_source=True))
    for name, ids in sets.items():
        sim.add_node(OverlayNode(name, target, initial_ids=ids))
    # Figure 1(a): the initial multicast tree.
    for parent, child in (("S", "A"), ("S", "B"), ("A", "C"), ("A", "D"), ("B", "E")):
        sim.connect(parent, child)
    if spec.param("with_perpendicular", True):
        # Figure 1(c/d): collaborative transfers between complementary
        # working sets (the legend's beneficial exchanges).
        for sender, receiver in (
            ("B", "A"), ("A", "B"),
            ("C", "D"), ("D", "C"),
            ("B", "C"), ("D", "E"), ("E", "D"), ("C", "E"),
        ):
            sim.connect(sender, receiver)
    return BuiltExperiment(
        spec=spec, kind="swarm", scenario=scenario_obj, runner=_run_swarm
    )


def random_overlay(
    num_peers: int = 12,
    target: int = 400,
    num_sources: int = 1,
    initial_fraction_lo: float = 0.0,
    initial_fraction_hi: float = 0.6,
    max_connections: int = 3,
    seed: int = 17,
    strategy_name: str = "Recode/BF",
    with_physical: bool = True,
    max_ticks: int = 10_000,
) -> ExperimentSpec:
    """Spec: a randomised adaptive overlay — sources plus seeded peers.

    Peers start with random slices of the symbol space sized uniformly
    in ``[initial_fraction_lo, initial_fraction_hi)`` of the target;
    every peer bootstraps from a source and the reconfiguration policy
    discovers perpendicular bandwidth on its own — the Section 2
    environment.
    """
    if num_sources < 1:
        raise SpecError("need at least one source")
    if not 0.0 <= initial_fraction_lo <= initial_fraction_hi <= 1.0:
        raise SpecError("initial fractions must satisfy 0 <= lo <= hi <= 1")
    return ExperimentSpec(
        scenario="random_overlay",
        seed=seed,
        swarm=SwarmSpec(target=target, distinct_multiplier=1.2),
        strategy=StrategySpec(name=strategy_name),
        measurement=MeasurementSpec(max_ticks=max_ticks),
        params={
            "num_peers": num_peers,
            "num_sources": num_sources,
            "initial_fraction_lo": initial_fraction_lo,
            "initial_fraction_hi": initial_fraction_hi,
            "max_connections": max_connections,
            "with_physical": with_physical,
        },
    )


@scenario(
    "random_overlay",
    small_spec=lambda: random_overlay(num_peers=6, target=100, seed=8),
    description="Randomised adaptive overlay: seeded peers discover each other",
    supports_transport=True,
)
def build_random_overlay(spec: ExperimentSpec) -> BuiltExperiment:
    """The legacy randomised construction, RNG-order-identical."""
    from repro.overlay.topology import PhysicalNetwork

    swarm = _require_swarm(spec)
    if spec.churn is not None:
        raise SpecError(
            "random_overlay schedules no churn itself; drive a ChurnProcess "
            "against the built simulator instead"
        )
    target = swarm.target
    num_peers = int(spec.param("num_peers", 12))
    num_sources = int(spec.param("num_sources", 1))
    lo = float(spec.param("initial_fraction_lo", 0.0))
    hi = float(spec.param("initial_fraction_hi", 0.6))
    max_connections = int(spec.param("max_connections", 3))
    with_physical = bool(spec.param("with_physical", True))

    rng = random.Random(spec.seed)
    family = default_family()
    physical = None
    if with_physical:
        physical = PhysicalNetwork.random_network(
            num_routers=max(4, num_peers // 2), seed=spec.seed
        )
    stats = (
        StatsRecorder(resolution=spec.measurement.resolution)
        if spec.measurement.record_series
        else None
    )
    admission, rewiring = _reconfig_policies(spec, rng)
    transport_kwargs, link_factory = _transport_setup(spec, stats)
    sim = simulator_class(spec)(
        VirtualTopology(physical),
        family,
        admission=admission,
        rewiring=rewiring,
        strategy_name=spec.strategy.name,
        summary_policy=_summary_policy(spec),
        rng=rng,
        link_factory=link_factory,
        stats=stats,
        **transport_kwargs,
        **_reconfig_sim_kwargs(spec, swarm),
    )
    scenario_obj = SimScenario("random_overlay", sim, stats, target)
    nodes: Dict[str, OverlayNode] = {}
    routers = physical.routers() if physical is not None else []
    distinct = swarm.distinct_symbols
    for i in range(num_sources):
        node = OverlayNode(
            f"src{i}", target, is_source=True,
            fresh_id_start=(1 << 40) + i * (1 << 20),
        )
        nodes[node.node_id] = node
    for i in range(num_peers):
        frac = rng.uniform(lo, hi)
        count = int(frac * target)
        ids = rng.sample(range(distinct), count) if count else []
        nodes[f"p{i}"] = OverlayNode(
            f"p{i}", target, initial_ids=ids, max_connections=max_connections
        )
    for node in nodes.values():
        if physical is not None and routers:
            physical.attach_host(
                node.node_id,
                rng.choice(routers),
                bandwidth=rng.uniform(2.0, 6.0),
                loss_rate=rng.uniform(0.0, 0.01),
            )
        sim.add_node(node)
    # Seed the overlay: every peer connects to a source, then rewiring
    # discovers perpendicular bandwidth on its own.
    source_ids = [n.node_id for n in nodes.values() if n.is_source]
    for node in nodes.values():
        if not node.is_source:
            sim.connect(rng.choice(source_ids), node.node_id)
    return BuiltExperiment(
        spec=spec, kind="swarm", scenario=scenario_obj, runner=_run_swarm
    )


__all__ = [
    "flash_crowd",
    "source_departure",
    "asymmetric_bandwidth",
    "asymmetric_bandwidth_swarm",
    "correlated_regional_loss",
    "pair_transfer",
    "multi_sender_transfer",
    "session_swarm",
    "figure1",
    "random_overlay",
    "reconfig_scheme",
    "simulator_class",
]
