"""Structured-topology scenarios: ``scale_free_swarm`` and ``cdn_catalog``.

Both scenarios put the paper's informed-collaboration machinery on the
structured graphs where its advantages sharpen (PAPERS.md's scale-free
hub-congestion prediction, Andersen et al.'s CDN bandwidth-management
motivation):

* ``scale_free_swarm`` — the mirror-content comparison of
  ``adaptive_overlay`` rerun over a Barabási–Albert overlay.  Peers
  hold complementary content halves, the origin serves through the
  biggest hub, and every wired peering follows the generated graph —
  so an uninformed overlay funnels redundant traffic through the hubs
  while informed admission/rewiring routes around them.  The headline
  ``informed_useful_gain`` is the informed arm's useful-fraction lead
  over the random arm; per-arm hub-load fractions (and their time
  series) quantify the routing-around-hubs story.

* ``cdn_catalog`` — a multi-object flash crowd over hierarchical CDN
  tiers.  The origin holds the whole catalog, regional caches pre-warm
  the popular half, and edge peers arrive in waves each demanding one
  object by Zipf rank.  Reconciliation is catalog-aware
  (:class:`~repro.overlay.catalog.CatalogScheme`): a candidate holding
  none of a peer's wanted objects is rejected before its symbol card
  is consulted, so peers wanting uncached objects route to the origin
  instead of polling useless caches.  Metrics report useful fraction
  and mean completion tick per demand rank.

Both run on either overlay engine (``measurement.engine``), and their
miniature campaign grids sweep exactly that axis — the parity tests
pin reference and columnar to identical seeded metrics.
"""

import math
import random
from typing import Dict, List

from repro.api.builders import (
    _expect_groups,
    _reconfig_policies,
    _reconfig_sim_kwargs,
    _require_swarm,
    _seeded_count,
    _source_group,
    reconfig_scheme,
    simulator_class,
)
from repro.api.registry import scenario
from repro.api.result import RunResult
from repro.api.runner import BuiltExperiment
from repro.api.spec import (
    CatalogSpec,
    ChurnSpec,
    ExperimentSpec,
    MeasurementSpec,
    NodeSpec,
    ReconfigSpec,
    SpecError,
    StrategySpec,
    SwarmSpec,
    TopologySpec,
)
from repro.overlay.catalog import CatalogNode, CatalogScheme, ObjectCatalog
from repro.overlay.node import OverlayNode
from repro.overlay.reconfiguration import SketchAdmission, UtilityRewiring
from repro.overlay.scenarios import default_family
from repro.overlay.simulator import SimulationReport
from repro.overlay.topology import VirtualTopology
from repro.seeding import derive_seed
from repro.sim.stats import StatsRecorder

#: The scale-free comparison arms, in reporting order.
SCALE_FREE_ARMS = ("random", "informed")

#: How many top-degree nodes count as "the hubs" in the load metrics.
HUB_COUNT = 3


def scale_free_swarm(
    num_peers: int = 24,
    target: int = 60,
    attach: int = 2,
    interval: float = 4.0,
    max_connections: int = 3,
    summary_kind: str = "",
    seed: int = 3,
    max_ticks: int = 8_000,
) -> ExperimentSpec:
    """Spec: random vs informed rewiring over a scale-free overlay.

    Args:
        num_peers: overlay size (excluding the origin).
        target: symbols each peer needs to complete.
        attach: Barabási–Albert attachment count (hub heaviness).
        interval: reconfiguration epoch period.
        max_connections: inbound sender slots per peer.
        summary_kind: summary driving the informed arm ("" = the
            default min-wise calling card).
        seed: master seed; both arms derive identically from it.
    """
    if num_peers < 2:
        raise SpecError("scale_free_swarm needs at least two peers")
    spec = ExperimentSpec(
        scenario="scale_free_swarm",
        seed=seed,
        swarm=SwarmSpec(
            target=target,
            distinct_multiplier=1.2,
            nodes=(
                NodeSpec(name="src", count=1, role="source"),
                NodeSpec(
                    name="p",
                    count=num_peers,
                    seeding="fixed",
                    seed_fraction=0.5,
                    seed_basis="distinct",
                    max_connections=max_connections,
                ),
            ),
            topology=TopologySpec(kind="scale_free", params={"attach": attach}),
        ),
        strategy=StrategySpec(name="Random"),
        reconfig=ReconfigSpec(policy="informed", interval=interval),
        measurement=MeasurementSpec(max_ticks=max_ticks),
    )
    if summary_kind:
        spec = spec.with_override("reconfig.summary.kind", summary_kind)
    return spec


def _scale_free_graph(spec: ExperimentSpec):
    swarm = _require_swarm(spec)
    if swarm.topology is None:
        raise SpecError(
            "scale_free_swarm needs a swarm topology (swarm.topology)"
        )
    peers = swarm.group("p")
    return swarm.topology.generate(peers.count, spec.seed)


def _build_scale_free_arm(spec: ExperimentSpec, arm: str, stats: StatsRecorder):
    """One arm's simulator; both arms draw identical construction streams."""
    swarm = _require_swarm(spec)
    src_name = _source_group(swarm).member_ids()[0]
    peers = swarm.group("p")
    names = peers.member_ids()
    target, distinct = swarm.target, swarm.distinct_symbols
    graph = _scale_free_graph(spec)

    rng = random.Random(derive_seed(spec.seed, "scale_free_swarm"))
    admission, rewiring = _reconfig_policies(spec, rng, policy=arm)
    sim = simulator_class(spec)(
        VirtualTopology(),
        default_family(),
        admission=admission,
        rewiring=rewiring,
        strategy_name=spec.strategy.name,
        rng=rng,
        stats=stats,
        **_reconfig_sim_kwargs(spec, swarm),
    )
    sim.add_node(OverlayNode(src_name, target, is_source=True))
    # Complementary content halves by peer parity: a same-half peering
    # is pure redundancy, a cross-half peering pure gain — the Figure 1
    # mirror insight spread over the generated graph.
    shuffled = list(range(distinct))
    rng.shuffle(shuffled)
    count = _seeded_count(peers, target, distinct)
    halves = (shuffled[:count], shuffled[count : 2 * count])
    for i, name in enumerate(names):
        sim.add_node(
            OverlayNode(
                name,
                target,
                initial_ids=halves[i % 2],
                max_connections=peers.max_connections,
            )
        )
    # Wire the structured graph, older (hub-heavy) end serving; nodes
    # the orientation leaves without an inbound edge are fed by the
    # origin, which otherwise serves through the biggest hub.
    fed = set()
    for u, v in graph.edges:
        sim.connect(names[u], names[v])
        fed.add(v)
    for hub in graph.hubs(1):
        sim.connect(src_name, names[hub])
    for i, name in enumerate(names):
        if i not in fed and i not in graph.hubs(1):
            sim.connect(src_name, name)
    return sim, graph


def _hub_load(stats: StatsRecorder, hub_names) -> float:
    """Fraction of all symbol sends originating at the hub nodes."""
    total = hub_sent = 0.0
    for entity in stats.entities():
        if "->" not in entity:
            continue
        sent = stats.total(entity, "sent")
        total += sent
        if entity.split("->", 1)[0] in hub_names:
            hub_sent += sent
    return hub_sent / total if total > 0 else 0.0


@scenario(
    "scale_free_swarm",
    small_spec=lambda: scale_free_swarm(
        num_peers=14,
        target=40,
        seed=3,
        max_ticks=4_000,
    ),
    description="Random vs informed rewiring over a scale-free overlay",
    small_grid=lambda: {
        "measurement.engine": ["reference", "columnar"],
        "swarm.topology.params.attach": [1, 2],
    },
    supports=("topology",),
)
def build_scale_free_swarm(spec: ExperimentSpec) -> BuiltExperiment:
    """Run both arms from identical seeds; report the hub-load story."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "p")
    _source_group(swarm)
    _scale_free_graph(spec)  # validate the topology selection up front
    if spec.churn is not None:
        raise SpecError("scale_free_swarm does not schedule churn")
    if spec.strategy.summary is not None:
        raise SpecError(
            "scale_free_swarm compares reconfiguration policies; select the "
            "summary through reconfig.summary, not strategy.summary"
        )
    rc = spec.reconfig if spec.reconfig is not None else ReconfigSpec()
    if rc.policy != "informed":
        raise SpecError(
            "scale_free_swarm runs every arm itself; its reconfig spec names "
            f"the informed arm's configuration, not {rc.policy!r}"
        )

    def run(built: BuiltExperiment) -> RunResult:
        metrics: Dict[str, float] = {}
        events: List[str] = []
        reports: Dict[str, SimulationReport] = {}
        series = (
            StatsRecorder(resolution=spec.measurement.resolution)
            if spec.measurement.record_series
            else None
        )
        for arm in SCALE_FREE_ARMS:
            stats = StatsRecorder(resolution=spec.measurement.resolution)
            sim, graph = _build_scale_free_arm(spec, arm, stats)
            peer_names = _require_swarm(spec).group("p").member_ids()
            hub_names = {peer_names[h] for h in graph.hubs(HUB_COUNT)}
            report = sim.run(max_ticks=spec.measurement.max_ticks)
            reports[arm] = report
            load = _hub_load(stats, hub_names)
            metrics[f"ticks[{arm}]"] = float(report.ticks)
            metrics[f"useful_fraction[{arm}]"] = report.efficiency
            metrics[f"reconfigurations[{arm}]"] = float(report.reconfigurations)
            metrics[f"control_bytes[{arm}]"] = float(report.control_bytes)
            metrics[f"hub_load_fraction[{arm}]"] = load
            events.append(
                f"{arm}: ticks={report.ticks} "
                f"useful_fraction={report.efficiency:.3f} "
                f"hub_load_fraction={load:.3f} "
                f"control_bytes={report.control_bytes}"
            )
            if series is not None:
                # The hub-load time series: symbol sends per bucket
                # summed over the hub senders, one signal per arm.
                for entity in stats.entities():
                    if "->" not in entity:
                        continue
                    if entity.split("->", 1)[0] not in hub_names:
                        continue
                    for t, v in stats.series(entity, "sent"):
                        series.count(t, f"hub_load[{arm}]", "sent", v)
                series.gauge(0.0, arm, "useful_fraction", report.efficiency)
                series.gauge(0.0, arm, "hub_load_fraction", load)
        metrics["informed_useful_gain"] = (
            metrics["useful_fraction[informed]"]
            - metrics["useful_fraction[random]"]
        )
        metrics["hub_relief"] = (
            metrics["hub_load_fraction[random]"]
            - metrics["hub_load_fraction[informed]"]
        )
        return RunResult(
            spec=spec,
            completed=all(r.all_complete for r in reports.values()),
            metrics=metrics,
            stats=series,
            events=events,
            extras={"reports": reports},
        )

    return BuiltExperiment(spec=spec, kind="sweep", runner=run)


def cdn_catalog(
    regionals: int = 3,
    edge_peers: int = 12,
    objects: int = 4,
    target: int = 48,
    zipf_skew: float = 1.0,
    size_skew: float = 0.0,
    priority_tiers: int = 2,
    waves: int = 2,
    wave_interval: float = 4.0,
    interval: float = 4.0,
    max_connections: int = 3,
    seed: int = 5,
    max_ticks: int = 8_000,
) -> ExperimentSpec:
    """Spec: a multi-object flash crowd over hierarchical CDN tiers.

    Args:
        regionals: tier-1 cache servers (pre-warmed with the popular
            half of the catalog).
        edge_peers: tier-2 clients, each demanding one object by Zipf
            rank, arriving in ``waves`` join waves.
        objects: catalog size; ``zipf_skew``/``size_skew``/
            ``priority_tiers`` map onto :class:`CatalogSpec`.
        target: total symbol budget the catalog's objects share.
        interval: reconfiguration epoch period.
        seed: master seed for graph, demand, and run streams alike.
    """
    if regionals < 1:
        raise SpecError("cdn_catalog needs at least one regional cache")
    if edge_peers < 1:
        raise SpecError("cdn_catalog needs at least one edge peer")
    return ExperimentSpec(
        scenario="cdn_catalog",
        seed=seed,
        swarm=SwarmSpec(
            target=target,
            distinct_multiplier=1.2,
            nodes=(
                NodeSpec(name="origin", count=1, role="source"),
                NodeSpec(
                    name="cache",
                    count=regionals,
                    seeding="fixed",
                    seed_fraction=0.5,
                    seed_basis="distinct",
                    max_connections=max_connections,
                ),
                NodeSpec(
                    name="edge",
                    count=edge_peers,
                    max_connections=max_connections,
                ),
            ),
            topology=TopologySpec(
                kind="cdn_tiers", params={"tiers": 3, "fanout": regionals}
            ),
        ),
        strategy=StrategySpec(name="Random"),
        churn=ChurnSpec(join_waves=waves, wave_interval=wave_interval)
        if waves
        else None,
        # Late in a catalog run the usefulness spread between a stocked
        # cache and a nearly-drained peer is small; the default swap
        # margin would freeze the overlay before the unpopular tail
        # finishes, so the scenario pins a tighter one.
        reconfig=ReconfigSpec(policy="informed", interval=interval, hysteresis=0.02),
        catalog=CatalogSpec(
            objects=objects,
            zipf_skew=zipf_skew,
            size_skew=size_skew,
            priority_tiers=priority_tiers,
        ),
        measurement=MeasurementSpec(max_ticks=max_ticks),
    )


def _catalog_policies(spec: ExperimentSpec, catalog: ObjectCatalog, rng):
    """(admission, rewiring) with the informed arm catalog-aware."""
    rc = spec.reconfig
    policy = rc.policy if rc is not None else "informed"
    if policy != "informed":
        return _reconfig_policies(spec, rng)
    if rc is None:
        rc = ReconfigSpec()
    base = reconfig_scheme(spec)
    scheme = CatalogScheme(catalog, base.kind, base.params_dict())
    return (
        SketchAdmission(scheme, min_usefulness=rc.min_usefulness),
        UtilityRewiring(scheme, hysteresis=rc.hysteresis, rng=rng),
    )


@scenario(
    "cdn_catalog",
    small_spec=lambda: cdn_catalog(
        regionals=2,
        edge_peers=8,
        objects=3,
        target=36,
        seed=5,
        max_ticks=4_000,
    ),
    description="Multi-object flash crowd over CDN tiers, catalog-aware",
    small_grid=lambda: {
        "catalog.zipf_skew": [0.8, 1.2],
        "measurement.engine": ["reference", "columnar"],
    },
    supports=("topology", "catalog"),
)
def build_cdn_catalog(spec: ExperimentSpec) -> BuiltExperiment:
    """One catalog-aware run over the CDN tier graph."""
    swarm = _require_swarm(spec)
    _expect_groups(swarm, "cache", "edge")
    origin_name = _source_group(swarm).member_ids()[0]
    if spec.catalog is None:
        raise SpecError("cdn_catalog needs a catalog spec (catalog)")
    if swarm.topology is None or swarm.topology.kind != "cdn_tiers":
        raise SpecError(
            "cdn_catalog interprets the cdn_tiers topology; set "
            "swarm.topology.kind = 'cdn_tiers'"
        )
    if spec.strategy.summary is not None:
        raise SpecError(
            "cdn_catalog selects its summary through reconfig.summary, "
            "not strategy.summary"
        )
    caches = swarm.group("cache")
    edges_group = swarm.group("edge")
    catalog = ObjectCatalog.from_specs(spec.catalog, swarm)

    n = 1 + caches.count + edges_group.count
    graph = swarm.topology.generate(n, spec.seed)
    tier1 = [i for i in range(n) if graph.tier[i] == 1]
    tier2 = [i for i in range(n) if graph.tier[i] == 2]
    if graph.tier[0] != 0 or len(tier1) != caches.count or len(tier2) != edges_group.count:
        raise SpecError(
            "cdn_catalog's tier graph must place the origin at tier 0, one "
            f"cache per tier-1 node and one edge peer per tier-2 node; got "
            f"tiers {dict(t0=1, t1=len(tier1), t2=len(tier2))} for groups "
            f"(1, {caches.count}, {edges_group.count}) — set "
            "topology params tiers=3, fanout=<cache count>"
        )
    node_name = {0: origin_name}
    node_name.update(dict(zip(tier1, caches.member_ids())))
    node_name.update(dict(zip(tier2, edges_group.member_ids())))
    parent = {}
    for u, v in graph.edges:
        parent.setdefault(v, u)

    def run(built: BuiltExperiment) -> RunResult:
        rng = random.Random(derive_seed(spec.seed, "cdn_catalog"))
        stats = (
            StatsRecorder(resolution=spec.measurement.resolution)
            if spec.measurement.record_series
            else None
        )
        admission, rewiring = _catalog_policies(spec, catalog, rng)
        sim = simulator_class(spec)(
            VirtualTopology(),
            default_family(),
            admission=admission,
            rewiring=rewiring,
            strategy_name=spec.strategy.name,
            rng=rng,
            stats=stats,
            **_reconfig_sim_kwargs(spec, swarm),
        )
        # The origin holds the entire catalog as a plain (non-minting)
        # fully seeded node: fresh-id minting is not object-addressable,
        # and the catalog's id ranges already carry decoding margin.
        all_ids = [i for o in range(catalog.objects) for i in catalog.symbol_ids(o)]
        sim.add_node(
            CatalogNode(
                origin_name,
                catalog,
                demand=(),
                initial_ids=all_ids,
                max_connections=1,
            )
        )
        # Regional caches pre-warm the popular half of the catalog.
        popular = range(math.ceil(catalog.objects / 2))
        cache_ids = [i for o in popular for i in catalog.symbol_ids(o)]
        for name in caches.member_ids():
            sim.add_node(
                CatalogNode(
                    name,
                    catalog,
                    demand=(),
                    initial_ids=cache_ids,
                    max_connections=caches.max_connections,
                )
            )
            sim.connect(origin_name, name)
        # Edge peers each demand one object by Zipf rank; the demand
        # map is shuffled so arrival waves do not confound rank order.
        edge_names = list(edges_group.member_ids())
        demand_rng = random.Random(derive_seed(spec.seed, "cdn_catalog", "demand"))
        assignment = catalog.assign_demand(len(edge_names))
        demand_rng.shuffle(assignment)
        demand_of = dict(zip(edge_names, assignment))

        def admit_edge(name: str) -> None:
            idx = tier2[edge_names.index(name)]
            sim.add_node(
                CatalogNode(
                    name,
                    catalog,
                    demand=(demand_of[name],),
                    max_connections=edges_group.max_connections,
                )
            )
            sim.connect(node_name[parent[idx]], name)

        churn = spec.churn
        if churn is None or churn.join_waves < 1:
            for name in edge_names:
                admit_edge(name)
        else:
            per_wave = math.ceil(len(edge_names) / churn.join_waves)

            def make_wave(batch: List[str]):
                def join_wave() -> None:
                    for name in batch:
                        admit_edge(name)

                return join_wave

            for w in range(churn.join_waves):
                batch = edge_names[w * per_wave : (w + 1) * per_wave]
                if batch:
                    sim.scheduler.schedule_at(
                        (w + 1) * float(churn.wave_interval) + 0.5,
                        make_wave(batch),
                    )

        report = sim.run(max_ticks=spec.measurement.max_ticks)
        metrics: Dict[str, float] = {
            "ticks": float(report.ticks),
            "useful_fraction": report.efficiency,
            "reconfigurations": float(report.reconfigurations),
            "control_bytes": float(report.control_bytes),
        }
        events: List[str] = [
            f"run: ticks={report.ticks} "
            f"useful_fraction={report.efficiency:.3f} "
            f"control_bytes={report.control_bytes}"
        ]
        by_rank: Dict[int, List[float]] = {}
        for name in edge_names:
            node = sim.nodes.get(name)
            if node is None or node.completed_at_tick is None:
                continue
            by_rank.setdefault(demand_of[name], []).append(
                float(node.completed_at_tick)
            )
        for rank in range(catalog.objects):
            ticks = by_rank.get(rank)
            if ticks:
                metrics[f"completion_rank{rank}"] = sum(ticks) / len(ticks)
                events.append(
                    f"rank {rank}: peers={len(ticks)} "
                    f"mean_completion={metrics[f'completion_rank{rank}']:.1f}"
                )
        return RunResult(
            spec=spec,
            completed=report.all_complete,
            metrics=metrics,
            stats=stats,
            events=events,
            extras={"report": report, "demand": demand_of},
        )

    return BuiltExperiment(spec=spec, kind="swarm", runner=run)


__all__ = ["SCALE_FREE_ARMS", "HUB_COUNT", "scale_free_swarm", "cdn_catalog"]
