"""Frozen, JSON-round-trippable experiment specifications.

An :class:`ExperimentSpec` is the single declarative description of an
experiment: which registered scenario interprets it, the master seed,
and the component specs — swarm population (:class:`SwarmSpec` of
:class:`NodeSpec` groups), link classes (:class:`LinkSpec` selected by
:class:`LinkRuleSpec`), sender strategy (:class:`StrategySpec`),
membership churn (:class:`ChurnSpec`), and measurement knobs
(:class:`MeasurementSpec`).  Specs are immutable values: they hash,
compare, and round-trip through JSON losslessly (``spec ==
ExperimentSpec.from_json(spec.to_json())``), so a spec file *is* the
experiment and can be diffed, archived, and re-run bit-identically.

Construction helpers for the scenario catalog live in
:mod:`repro.api.builders`; :func:`repro.api.run` executes a spec.
"""

import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

#: Link model kinds a :class:`LinkSpec` may name.
LINK_KINDS = ("constant", "latency_jitter", "gilbert_elliott")

#: Initial working-set rules a :class:`NodeSpec` may name.
SEEDING_RULES = ("empty", "fixed", "uniform")

#: Bases the seeding fraction may be taken against.
SEED_BASES = ("target", "distinct")

#: Node roles.
NODE_ROLES = ("peer", "source")

#: Reconfiguration policy kinds a :class:`ReconfigSpec` may name.
RECONFIG_POLICIES = ("informed", "random", "static")

#: Swarm execution engines a :class:`MeasurementSpec` may select.
ENGINES = ("reference", "columnar")

#: Simulation fidelities a :class:`MeasurementSpec` may select:
#: ``"packet"`` runs the per-symbol event engines, ``"flow"`` the
#: rate-equation population engine (:mod:`repro.flow`).
FIDELITIES = ("packet", "flow")

#: Arrival-wave shapes a :class:`PopulationSpec` may name.
WAVE_PROFILES = ("uniform", "flash", "diurnal")

#: The informed policy's historical defaults (admission threshold and
#: swap margin), shared by the spec fields and their unset checks.
DEFAULT_MIN_USEFULNESS = 0.02
DEFAULT_HYSTERESIS = 0.1


class SpecError(ValueError):
    """A spec failed validation or deserialisation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _require_int(value: object, name: str) -> None:
    """Strict integer check: a JSON 7.5 (or true) must not pass as 7."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{name} must be an integer, got {value!r}")


@dataclass(frozen=True)
class LinkSpec:
    """One link model class, by kind and parameters.

    ``shared_key`` couples links: every link built from rules whose
    specs carry the same non-empty key shares one loss process (the
    correlated-loss trunk of
    :func:`repro.api.builders.correlated_regional_loss`).
    """

    kind: str = "constant"
    rate: float = 1.0
    loss_rate: float = 0.0
    latency: float = 0.0
    jitter: float = 0.0
    p_good_bad: float = 0.05
    p_bad_good: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 0.5
    shared_key: str = ""

    def __post_init__(self) -> None:
        # Bounds mirror the link-model constructors exactly, so a spec
        # that validates can always be built.
        _require(self.kind in LINK_KINDS, f"unknown link kind {self.kind!r}; expected one of {LINK_KINDS}")
        _require(self.rate >= 0.0, "link rate must be non-negative")
        _require(self.latency >= 0.0, "latency must be non-negative")
        _require(self.jitter >= 0.0, "jitter must be non-negative")
        _require(0.0 <= self.loss_rate < 1.0, "loss_rate must lie in [0, 1)")
        for field_name in ("loss_good", "loss_bad"):
            value = getattr(self, field_name)
            _require(0.0 <= value <= 1.0, f"{field_name} must lie in [0, 1]")
        if self.kind == "gilbert_elliott":
            for field_name in ("p_good_bad", "p_bad_good"):
                value = getattr(self, field_name)
                _require(0.0 < value <= 1.0, f"{field_name} must lie in (0, 1]")


@dataclass(frozen=True)
class LinkRuleSpec:
    """Maps (sender class, receiver class) to a link class; ``*`` matches all.

    Rules are tried in order; the first match wins.
    """

    sender_class: str = "*"
    receiver_class: str = "*"
    link: LinkSpec = LinkSpec()

    def matches(self, sender_class: str, receiver_class: str) -> bool:
        return self.sender_class in ("*", sender_class) and self.receiver_class in (
            "*",
            receiver_class,
        )


@dataclass(frozen=True)
class NodeSpec:
    """A *group* of nodes sharing a role, class, and seeding rule.

    Members are named ``f"{name}{i}"`` for ``i in range(count)`` —
    except single-member source groups, which use ``name`` verbatim
    (the catalog's ``"src"``).

    Seeding rules (initial working set, sampled from the scenario RNG):

    * ``empty`` — starts with nothing;
    * ``fixed`` — exactly ``int(basis * seed_fraction)`` symbols;
    * ``uniform`` — a uniform count in ``[0, int(basis * seed_fraction))``;

    where ``basis`` is the swarm target or its distinct-symbol count per
    ``seed_basis``.
    """

    name: str = "p"
    count: int = 1
    role: str = "peer"
    node_class: str = ""
    seeding: str = "empty"
    seed_fraction: float = 0.0
    seed_basis: str = "target"
    max_connections: int = 3

    def __post_init__(self) -> None:
        _require_int(self.count, "node count")
        _require_int(self.max_connections, "max_connections")
        _require(self.count >= 0, "node count must be non-negative")
        _require(self.role in NODE_ROLES, f"unknown node role {self.role!r}; expected one of {NODE_ROLES}")
        _require(self.seeding in SEEDING_RULES, f"unknown seeding rule {self.seeding!r}; expected one of {SEEDING_RULES}")
        _require(self.seed_basis in SEED_BASES, f"unknown seed basis {self.seed_basis!r}; expected one of {SEED_BASES}")
        _require(0.0 <= self.seed_fraction <= 1.0, "seed_fraction must lie in [0, 1]")

    def member_ids(self) -> Tuple[str, ...]:
        """The concrete node ids this group expands to."""
        if self.role == "source" and self.count == 1:
            return (self.name,)
        return tuple(f"{self.name}{i}" for i in range(self.count))


@dataclass(frozen=True)
class TopologySpec:
    """Which structured overlay graph the swarm is wired over.

    ``kind`` names a registered :mod:`repro.topology` generator
    (``"scale_free"``, ``"clustered"``, ``"cdn_tiers"``, ``"random"``,
    ``"ring"``); ``params`` holds that generator's integer parameters
    (``attach``, ``clusters``, ``tiers``, ``fanout``, ``degree``),
    stored as sorted pairs so the spec stays hashable (read with
    :meth:`param`).  The graph itself is a pure function of ``(kind,
    node count, seed, params)`` — :meth:`generate` replays it
    bit-identically from the experiment seed via ``derive_seed``.
    """

    kind: str = "random"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.kind), "topology kind must be non-empty")
        from repro.topology import TopologyError, generator_entry

        try:
            entry = generator_entry(self.kind)
        except TopologyError as exc:
            raise SpecError(str(exc)) from None
        object.__setattr__(self, "params", _freeze_params(self.params))
        unknown = sorted(set(self.params_dict()) - set(entry.params))
        _require(
            not unknown,
            f"topology kind {self.kind!r} does not accept parameter(s) "
            f"{', '.join(unknown)} (accepts: "
            f"{', '.join(sorted(entry.params)) or 'none'})",
        )

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def generate(self, n: int, seed: int):
        """The concrete :class:`~repro.topology.GeneratedTopology`."""
        from repro.topology import TopologyError, generate

        try:
            return generate(self.kind, n, seed, **self.params_dict())
        except TopologyError as exc:
            raise SpecError(str(exc)) from None


@dataclass(frozen=True)
class SwarmSpec:
    """The population and wiring substrate of a swarm experiment."""

    target: int = 100
    distinct_multiplier: float = 1.2
    nodes: Tuple[NodeSpec, ...] = ()
    links: Tuple[LinkRuleSpec, ...] = ()
    reconfigure_every: int = 20
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        _require_int(self.target, "swarm target")
        _require_int(self.reconfigure_every, "reconfigure_every")
        _require(self.target > 0, "swarm target must be positive")
        _require(self.distinct_multiplier >= 1.0, "distinct_multiplier must be >= 1.0")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "links", tuple(self.links))

    @property
    def distinct_symbols(self) -> int:
        """Distinct symbols in the system (``int(multiplier * target)``)."""
        return int(self.target * self.distinct_multiplier)

    def group(self, name: str) -> NodeSpec:
        """The node group named ``name`` (:class:`SpecError` if absent)."""
        for ns in self.nodes:
            if ns.name == name:
                return ns
        raise SpecError(
            f"swarm has no node group {name!r}; groups: "
            f"{[ns.name for ns in self.nodes]}"
        )

    def link_for(self, sender_class: str, receiver_class: str) -> Optional[LinkSpec]:
        """First matching link rule's spec, or None (use path defaults)."""
        for rule in self.links:
            if rule.matches(sender_class, receiver_class):
                return rule.link
        return None


@dataclass(frozen=True)
class SummarySpec:
    """Which working-set summary peers exchange, and its parameters.

    ``kind`` names a registered :class:`~repro.reconcile.base.Summary`
    adapter (``"minwise"``, ``"bloom"``, ``"art"``, ``"cpi"``, ...);
    ``params`` holds that adapter's scalar build parameters, stored as
    sorted pairs so the spec stays hashable (read with :meth:`param`).
    A spec that validates always resolves to a buildable
    :class:`~repro.reconcile.SummaryPolicy` (:meth:`policy`).
    """

    kind: str = "bloom"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.kind), "summary kind must be non-empty")
        from repro.reconcile import UnknownSummaryError, summary_class

        try:
            summary_class(self.kind)
        except UnknownSummaryError as exc:
            raise SpecError(str(exc)) from None
        object.__setattr__(self, "params", _freeze_params(self.params))

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def policy(self):
        """The :class:`~repro.reconcile.SummaryPolicy` this spec names."""
        from repro.reconcile import SummaryPolicy

        return SummaryPolicy(kind=self.kind, params=self.params_dict())


@dataclass(frozen=True)
class ReconfigSpec:
    """How (and how often) the overlay adapts its peering.

    ``policy`` picks the adaptation arm: ``"informed"`` (summary-driven
    admission thresholds and utility rewiring — the paper's Section 4
    machinery), ``"random"`` (uninformed random rewiring, the control
    arm), or ``"static"`` (no rewiring at all).  ``summary`` names the
    registered :class:`~repro.reconcile.base.Summary` kind whose cards
    drive the informed estimates; ``None`` selects the historical
    min-wise calling card (128 permutations over the 2^32 universe,
    family seed 99), under which a run is bit-identical to the
    pre-spec behaviour — the parity tests pin it.

    ``interval`` is the epoch period in simulated time units (0 = the
    swarm's ``reconfigure_every``); ``jitter`` defers each epoch's pass
    by a uniform draw in ``[0, jitter)``; ``scan_budget`` caps how many
    candidate cards a receiver scans per epoch (0 = all).
    ``min_usefulness`` and ``hysteresis`` are the informed policy's
    admission threshold and swap margin.
    """

    policy: str = "informed"
    summary: Optional["SummarySpec"] = None
    interval: float = 0.0
    jitter: float = 0.0
    scan_budget: int = 0
    min_usefulness: float = DEFAULT_MIN_USEFULNESS
    hysteresis: float = DEFAULT_HYSTERESIS

    def __post_init__(self) -> None:
        _require(
            self.policy in RECONFIG_POLICIES,
            f"unknown reconfig policy {self.policy!r}; expected one of {RECONFIG_POLICIES}",
        )
        _require_int(self.scan_budget, "scan_budget")
        _require(self.interval >= 0.0, "reconfig interval must be non-negative")
        _require(self.jitter >= 0.0, "reconfig jitter must be non-negative")
        _require(self.scan_budget >= 0, "scan_budget must be non-negative")
        _require(
            0.0 <= self.min_usefulness <= 1.0, "min_usefulness must lie in [0, 1]"
        )
        _require(self.hysteresis >= 0.0, "hysteresis must be non-negative")
        if self.policy != "informed":
            # Only the informed policy consults these; accepting them on
            # the baseline arms would silently ignore a user's selection.
            _require(
                self.summary is None,
                f"reconfig policy {self.policy!r} consults no summaries; "
                "'summary' applies to the informed policy only",
            )
            _require(
                self.min_usefulness == DEFAULT_MIN_USEFULNESS
                and self.hysteresis == DEFAULT_HYSTERESIS,
                f"reconfig policy {self.policy!r} has no admission threshold "
                "or swap margin; min_usefulness/hysteresis apply to the "
                "informed policy only",
            )


@dataclass(frozen=True)
class TransportSpec:
    """Sender-side transport selection: congestion control and queues.

    ``policy`` names a registered :class:`~repro.transport.policies.
    TransportPolicy` kind (``"open_loop"``, ``"aimd"``,
    ``"bbr_lite"``); ``params`` holds that policy's scalar constructor
    parameters, stored as sorted pairs so the spec stays hashable
    (read with :meth:`param`).  A spec that validates always builds —
    the policy is instantiated once during validation.

    ``bottleneck_rate`` > 0 routes every connection's packets through
    one shared :class:`~repro.transport.queue.BottleneckQueue` (fluid
    FIFO drop-tail, ``bottleneck_buffer`` packets deep) draining at
    that rate; 0 leaves links unqueued (congestion control still
    applies over the existing per-link loss/latency models).
    ``rto_min``/``rto_max`` clamp the adaptive retransmission timeout.

    The ``open_loop`` policy with no bottleneck reproduces the
    historical open-loop sender behaviour exactly; a spec with
    ``transport`` unset skips the transport layer entirely (the
    bit-identical parity baseline).
    """

    policy: str = "open_loop"
    params: Tuple[Tuple[str, Any], ...] = ()
    bottleneck_rate: float = 0.0
    bottleneck_buffer: int = 32
    rto_min: float = 2.0
    rto_max: float = 64.0

    def __post_init__(self) -> None:
        _require(bool(self.policy), "transport policy must be non-empty")
        _require_int(self.bottleneck_buffer, "bottleneck_buffer")
        _require(
            self.bottleneck_rate >= 0.0, "bottleneck_rate must be non-negative"
        )
        _require(
            self.bottleneck_buffer >= 1,
            "bottleneck_buffer must hold at least 1 packet",
        )
        _require(self.rto_min > 0.0, "rto_min must be positive")
        _require(self.rto_max >= self.rto_min, "rto_max must be >= rto_min")
        object.__setattr__(self, "params", _freeze_params(self.params))
        from repro.transport import TransportError, validate_policy

        try:
            validate_policy(self.policy, self.params_dict())
        except TransportError as exc:
            raise SpecError(str(exc)) from None

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class StrategySpec:
    """Sender strategy selection (the Figure 5-8 legend) and summary budget.

    ``summary`` (a :class:`SummarySpec`) swaps the hardcoded
    min-wise/Bloom structures for any registered summary kind across
    the strategy, protocol, and session layers; ``None`` keeps the
    historical behaviour bit-identically.
    """

    name: str = "Recode/BF"
    bloom_bits_per_element: int = 8
    summary: Optional["SummarySpec"] = None

    def __post_init__(self) -> None:
        _require_int(self.bloom_bits_per_element, "bloom_bits_per_element")
        _require(self.bloom_bits_per_element > 0, "bloom_bits_per_element must be positive")


@dataclass(frozen=True)
class ChurnSpec:
    """Scheduled membership disturbance: join waves and departures."""

    join_waves: int = 0
    wave_interval: float = 0.0
    depart_node: str = ""
    depart_at: float = 0.0

    def __post_init__(self) -> None:
        _require_int(self.join_waves, "join_waves")
        _require(self.join_waves >= 0, "join_waves must be non-negative")
        _require(self.wave_interval >= 0.0, "wave_interval must be non-negative")


@dataclass(frozen=True)
class MeasurementSpec:
    """What to measure and how long to run."""

    max_ticks: int = 10_000
    resolution: float = 1.0
    record_series: bool = True
    max_packets: int = 0  # 0 = let the transfer loop derive its default
    #: Swarm execution engine: "reference" is the per-object event loop
    #: (the parity baseline), "columnar" the batched flat-array engine
    #: for large swarms.  Both produce identical seeded metrics; the
    #: default keeps every existing pin byte-identical.  Sweepable via
    #: ``with_override("measurement.engine", ...)``.
    engine: str = "reference"
    #: Simulation fidelity: "packet" runs the per-symbol event engines
    #: (every existing scenario), "flow" the rate-equation population
    #: engine of :mod:`repro.flow` — bulk transfer as closed-form
    #: goodput between real summary handshakes, for million-peer
    #: populations.  Only scenarios registered with flow support
    #: (``population_flash_crowd``) accept it.  Sweepable via
    #: ``with_override("measurement.fidelity", ...)``.
    fidelity: str = "packet"

    def __post_init__(self) -> None:
        _require_int(self.max_ticks, "max_ticks")
        _require_int(self.max_packets, "max_packets")
        _require(self.max_ticks > 0, "max_ticks must be positive")
        _require(self.resolution > 0, "resolution must be positive")
        _require(self.max_packets >= 0, "max_packets must be non-negative")
        _require(
            self.engine in ENGINES,
            f"engine must be one of {sorted(ENGINES)}, got {self.engine!r}",
        )
        _require(
            self.fidelity in FIDELITIES,
            f"fidelity must be one of {sorted(FIDELITIES)}, got {self.fidelity!r}",
        )


@dataclass(frozen=True)
class PopulationSpec:
    """A population-scale demand model for the flow-fidelity scenarios.

    Describes *who wants what, when*: ``size`` peers spread over
    ``objects`` distinct contents by a Zipf popularity law
    (``zipf_skew``), arriving in ``waves`` join waves shaped by
    ``wave_profile`` every ``wave_interval`` time units, with a
    ``seeded_fraction`` of each object's audience pre-seeded as two
    complementary mirror groups (the paper's Figure 1 environment at
    population scale).  ``rate``/``loss_rate`` describe the per-
    connection goodput; ``rate_tiers``/``rate_spread`` split each
    arrival cohort into bandwidth classes with multipliers spanning
    ``[1-spread, 1+spread]``.  ``sample_cap`` bounds the sampled-ID
    sketch each flow-level cohort representative carries (the set the
    real reconciliation summaries are built over at handshake time).
    """

    size: int = 10_000
    objects: int = 1
    zipf_skew: float = 0.8
    waves: int = 4
    wave_profile: str = "flash"
    wave_interval: float = 10.0
    seeded_fraction: float = 0.1
    rate: float = 2.0
    loss_rate: float = 0.01
    rate_tiers: int = 2
    rate_spread: float = 0.25
    sample_cap: int = 256
    max_connections: int = 3

    def __post_init__(self) -> None:
        for name in ("size", "objects", "waves", "rate_tiers", "sample_cap",
                     "max_connections"):
            _require_int(getattr(self, name), name)
        _require(self.size >= 1, "population size must be at least 1")
        _require(self.objects >= 1, "objects must be at least 1")
        _require(self.zipf_skew >= 0.0, "zipf_skew must be non-negative")
        _require(self.waves >= 1, "need at least one arrival wave")
        _require(
            self.wave_profile in WAVE_PROFILES,
            f"unknown wave profile {self.wave_profile!r}; expected one of "
            f"{WAVE_PROFILES}",
        )
        _require(self.wave_interval > 0.0, "wave_interval must be positive")
        _require(
            0.0 <= self.seeded_fraction < 1.0,
            "seeded_fraction must lie in [0, 1)",
        )
        _require(self.rate > 0.0, "population rate must be positive")
        _require(0.0 <= self.loss_rate < 1.0, "loss_rate must lie in [0, 1)")
        _require(self.rate_tiers >= 1, "need at least one rate tier")
        _require(
            0.0 <= self.rate_spread < 1.0, "rate_spread must lie in [0, 1)"
        )
        _require(self.sample_cap >= 16, "sample_cap must be at least 16")
        _require(self.max_connections >= 1, "max_connections must be at least 1")


@dataclass(frozen=True)
class CatalogSpec:
    """A multi-object content catalog with skewed demand.

    ``objects`` distinct contents share the swarm's symbol target:
    object sizes follow ``1/rank^size_skew`` (``0`` = equal sizes,
    apportioned by largest remainder via :func:`repro.flow.demand.
    apportion`), and per-peer demand follows ``1/rank^zipf_skew`` —
    the same Zipf machinery :class:`PopulationSpec` uses at flow
    fidelity.  ``priority_tiers`` > 0 splits the demand ranking into
    that many delivery-priority bands (tier 0 = most popular), which
    catalog-aware reconciliation weights when scoring candidates.

    A spec with ``catalog`` unset (or ``objects=1``,
    ``priority_tiers=0``) describes the historical single-object run.
    """

    objects: int = 1
    zipf_skew: float = 0.8
    size_skew: float = 0.0
    priority_tiers: int = 0

    def __post_init__(self) -> None:
        _require_int(self.objects, "catalog objects")
        _require_int(self.priority_tiers, "priority_tiers")
        _require(self.objects >= 1, "catalog needs at least one object")
        _require(self.zipf_skew >= 0.0, "zipf_skew must be non-negative")
        _require(self.size_skew >= 0.0, "size_skew must be non-negative")
        _require(
            0 <= self.priority_tiers <= self.objects,
            "priority_tiers must lie in [0, objects]",
        )


def _freeze_params(params: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalise scenario extras to a sorted tuple of (key, value) pairs."""
    if isinstance(params, Mapping):
        items = list(params.items())
    else:
        try:
            items = [(key, value) for key, value in params]
        except (TypeError, ValueError) as exc:
            raise SpecError(
                "params must be a mapping or a sequence of (key, value) "
                f"pairs: {exc}"
            ) from exc
    seen = set()
    for key, value in items:
        _require(isinstance(key, str), "param keys must be strings")
        _require(key not in seen, f"duplicate param key {key!r}")
        seen.add(key)
        _require(
            value is None or isinstance(value, (bool, int, float, str)),
            f"param {key!r} must be a JSON scalar, got {type(value).__name__}",
        )
    return tuple(sorted(items, key=lambda item: item[0]))


@dataclass(frozen=True)
class ExperimentSpec:
    """The complete declarative description of one experiment.

    ``scenario`` names the registered interpreter
    (:mod:`repro.api.registry`); ``seed`` is the master seed every RNG
    in the run descends from; ``params`` holds scenario-specific scalar
    extras that have no component home (stored as sorted pairs so the
    spec stays hashable; read with :meth:`param`).
    """

    scenario: str
    seed: int = 0
    swarm: Optional[SwarmSpec] = None
    strategy: StrategySpec = StrategySpec()
    churn: Optional[ChurnSpec] = None
    reconfig: Optional[ReconfigSpec] = None
    transport: Optional[TransportSpec] = None
    measurement: MeasurementSpec = MeasurementSpec()
    population: Optional[PopulationSpec] = None
    catalog: Optional[CatalogSpec] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.scenario), "scenario name must be non-empty")
        _require_int(self.seed, "spec seed")
        object.__setattr__(self, "params", _freeze_params(self.params))

    # -- params accessors ---------------------------------------------------

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def with_params(self, **updates: Any) -> "ExperimentSpec":
        """A copy with ``params`` entries added/replaced."""
        merged = self.params_dict()
        merged.update(updates)
        return dataclasses.replace(self, params=_freeze_params(merged))

    def with_override(self, path: str, value: Any) -> "ExperimentSpec":
        """A copy with the dotted-path field ``path`` replaced by ``value``.

        The campaign grid's application mechanism: ``path`` names any
        scalar spec field by its dotted location (``"strategy.name"``,
        ``"swarm.target"``, ``"params.correlation"``,
        ``"strategy.summary.kind"``, ``"churn.depart_at"``...).
        ``params`` segments address the scalar-extras mappings; a
        ``None`` component on the way (no churn, no summary) is
        instantiated with its defaults first.  Unknown paths, non-scalar
        targets (node/link arrays), and values the component rejects all
        fold into :class:`SpecError`.
        """
        parts = path.split(".")
        _require(all(parts) and parts[0], f"override path {path!r} is malformed")
        return _override(self, parts, value, path)

    # -- the component registry ---------------------------------------------

    def component(self, name: str) -> Any:
        """The registered component's current value (None when unset)."""
        comp = component_def(name)
        obj: Any = self
        for segment in comp.path:
            if obj is None:
                return None
            obj = getattr(obj, segment)
        return obj

    def with_component_spec(self, name: str, value: Any) -> "ExperimentSpec":
        """A copy with the registered component ``name`` set to ``value``.

        ``value`` must be an instance of the component's spec class (or
        ``None`` to unset it); ``None`` intermediates on the path (no
        swarm yet, say) are instantiated with their defaults.
        """
        comp = component_def(name)
        _require(
            value is None or isinstance(value, comp.cls),
            f"component {name!r} takes a {comp.cls.__name__}, "
            f"got {type(value).__name__}",
        )
        return _graft(self, comp.path, value)

    def with_component(self, name: str, kind: Optional[str] = None, **fields: Any) -> "ExperimentSpec":
        """A copy selecting component ``name``, built from keyword fields.

        The one mechanism behind every ``with_*`` helper: ``kind`` maps
        to the component's selector field (summary ``kind``, reconfig
        ``policy``, ...), the rest pass through to the component spec's
        constructor, and the result is grafted at the component's
        registered path.  Unknown components and fields the spec class
        rejects fold into :class:`SpecError`.
        """
        comp = component_def(name)
        if kind is not None:
            _require(
                bool(comp.kind_field),
                f"component {name!r} has no kind selector",
            )
            _require(
                comp.kind_field not in fields,
                f"component {name!r}: {comp.kind_field!r} given both "
                f"positionally and by keyword",
            )
            fields[comp.kind_field] = kind
        return self.with_component_spec(name, _construct(comp.cls, fields))

    @property
    def summary(self) -> Optional[SummarySpec]:
        """The experiment's summary selection (``strategy.summary``)."""
        return self.strategy.summary

    def with_summary(self, kind: str, **params: Any) -> "ExperimentSpec":
        """A copy selecting a summary kind for the whole experiment."""
        return self.with_component("summary", kind, params=params)

    def with_reconfig(self, policy: str = "informed", **fields: Any) -> "ExperimentSpec":
        """A copy selecting an overlay reconfiguration policy.

        ``summary_kind``/``summary_params`` select the summary the
        informed estimates flow through; every other keyword maps to a
        :class:`ReconfigSpec` field.
        """
        kind = fields.pop("summary_kind", None)
        params = fields.pop("summary_params", None)
        summary = SummarySpec(kind=kind, params=params or ()) if kind else None
        return self.with_component("reconfig", policy, summary=summary, **fields)

    def with_transport(self, policy: str = "open_loop", **fields: Any) -> "ExperimentSpec":
        """A copy selecting a sender transport policy.

        ``params`` (a mapping) carries the policy's constructor
        parameters; every other keyword maps to a
        :class:`TransportSpec` field.
        """
        params = fields.pop("params", None) or ()
        return self.with_component("transport", policy, params=params, **fields)

    def with_topology(self, kind: str = "random", **params: Any) -> "ExperimentSpec":
        """A copy wiring the swarm over a structured topology."""
        return self.with_component("topology", kind, params=params)

    def with_catalog(self, objects: int = 1, **fields: Any) -> "ExperimentSpec":
        """A copy disseminating a multi-object catalog."""
        return self.with_component("catalog", objects=objects, **fields)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON-types dict; inverse of :meth:`from_dict`."""
        return _spec_to_dict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        _require(isinstance(data, Mapping), "spec must be a JSON object")
        _require("scenario" in data, "spec is missing the 'scenario' key")
        return _spec_from_dict(cls, data)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


#: Components :meth:`ExperimentSpec.with_override` may instantiate when
#: a path traverses a field currently set to ``None``.
_DEFAULTABLE_COMPONENTS = {
    "swarm": SwarmSpec,
    "churn": ChurnSpec,
    "summary": SummarySpec,
    "reconfig": ReconfigSpec,
    "transport": TransportSpec,
    "population": PopulationSpec,
    "topology": TopologySpec,
    "catalog": CatalogSpec,
}


@dataclass(frozen=True)
class ComponentDef:
    """One registered, selectable component of an :class:`ExperimentSpec`.

    ``path`` is the field path from the spec root to where the
    component lives; ``kind_field`` names the component's selector
    field (``kind``/``policy``), empty when it has none.
    """

    name: str
    cls: type
    path: Tuple[str, ...]
    kind_field: str = ""


#: The declarative component registry behind
#: :meth:`ExperimentSpec.with_component`: every selectable component,
#: its spec class, and where it grafts.  ``with_summary`` /
#: ``with_reconfig`` / ``with_transport`` / ``with_topology`` /
#: ``with_catalog`` and the CLI's ``--summary``-family axes all
#: delegate here; a new component registers instead of adding another
#: hand-rolled copy of that plumbing.
COMPONENTS: Dict[str, ComponentDef] = {
    "summary": ComponentDef("summary", SummarySpec, ("strategy", "summary"), "kind"),
    "reconfig": ComponentDef("reconfig", ReconfigSpec, ("reconfig",), "policy"),
    "transport": ComponentDef("transport", TransportSpec, ("transport",), "policy"),
    "topology": ComponentDef("topology", TopologySpec, ("swarm", "topology"), "kind"),
    "catalog": ComponentDef("catalog", CatalogSpec, ("catalog",), ""),
}


def component_def(name: str) -> ComponentDef:
    """The registry entry for ``name`` (:class:`SpecError` if absent)."""
    try:
        return COMPONENTS[name]
    except KeyError:
        raise SpecError(
            f"unknown component {name!r} (registered: {sorted(COMPONENTS)})"
        ) from None


def _graft(obj: Any, path: Tuple[str, ...], value: Any):
    """Replace the field at ``path``, defaulting ``None`` intermediates."""
    head, rest = path[0], path[1:]
    if not rest:
        return dataclasses.replace(obj, **{head: value})
    child = getattr(obj, head)
    if child is None:
        child = _DEFAULTABLE_COMPONENTS[head]()
    return dataclasses.replace(obj, **{head: _graft(child, rest, value)})


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _override(obj: Any, parts: list, value: Any, full_path: str):
    """Recursive core of :meth:`ExperimentSpec.with_override`."""
    head, rest = parts[0], parts[1:]
    # `params.KEY` addresses the scalar-extras mapping of the spec (or
    # of a Summary/Transport/TopologySpec) rather than a dataclass field.
    if head == "params" and isinstance(obj, _PARAMS_CLASSES):
        _require(
            len(rest) == 1,
            f"override {full_path!r}: 'params' takes exactly one key segment",
        )
        _require(_is_scalar(value), f"override {full_path!r}: value must be a JSON scalar")
        if isinstance(obj, ExperimentSpec):
            return obj.with_params(**{rest[0]: value})
        merged = obj.params_dict()
        merged[rest[0]] = value
        try:
            return dataclasses.replace(obj, params=_freeze_params(merged))
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(f"override {full_path!r}: {exc}") from exc
    known = {f.name for f in fields(obj)}
    _require(
        head in known,
        f"override {full_path!r}: {type(obj).__name__} has no field {head!r} "
        f"(fields: {sorted(known)})",
    )
    if not rest:
        _require(_is_scalar(value), f"override {full_path!r}: value must be a JSON scalar")
        current = getattr(obj, head)
        _require(
            not isinstance(current, tuple),
            f"override {full_path!r}: field {head!r} is an array; only scalar "
            f"fields can be overridden",
        )
        try:
            return dataclasses.replace(obj, **{head: value})
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(f"override {full_path!r}: {exc}") from exc
    child = getattr(obj, head)
    if child is None:
        default = _DEFAULTABLE_COMPONENTS.get(head)
        _require(
            default is not None,
            f"override {full_path!r}: {type(obj).__name__}.{head} is unset and "
            f"has no default to extend (extendable when unset: "
            f"{sorted(_DEFAULTABLE_COMPONENTS)})",
        )
        child = default()
    _require(
        dataclasses.is_dataclass(child),
        f"override {full_path!r}: field {head!r} is not a component spec "
        f"(nested specs of {type(obj).__name__}: "
        f"{sorted(_NESTED_SPEC_FIELDS.get(type(obj), {})) or ['none']})",
    )
    return dataclasses.replace(obj, **{head: _override(child, rest, value, full_path)})


def _check_keys(cls: type, data: Any) -> None:
    """Require ``data`` to be a mapping using only ``cls``'s field names."""
    name = "spec" if cls is ExperimentSpec else cls.__name__
    _require(isinstance(data, Mapping), f"{name} must be a JSON object")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    _require(
        not unknown,
        f"unknown {name} keys {sorted(unknown)}; expected a subset of {sorted(known)}",
    )


def _construct(cls: type, kwargs: Mapping[str, Any]):
    """Instantiate a spec dataclass, folding bad types into SpecError."""
    try:
        return cls(**kwargs)
    except SpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecError(f"invalid {cls.__name__}: {exc}") from exc


#: Spec classes whose ``params`` field is a frozen scalar mapping (the
#: serialisation and override layers treat it as a dict, not a field).
_PARAMS_CLASSES = (ExperimentSpec, SummarySpec, TransportSpec, TopologySpec)

#: Nested single-spec fields per dataclass: ``field -> (class,
#: defaulted)``.  ``defaulted`` fields fall back to the class's
#: defaults when the JSON value is ``null``/absent; the rest stay
#: ``None``.  This one table drives :func:`_spec_from_dict`,
#: :func:`_spec_to_dict`, and the override error messages — a new
#: nested spec registers here instead of growing each walker a branch.
_NESTED_SPEC_FIELDS: Dict[type, Dict[str, Tuple[type, bool]]] = {
    ExperimentSpec: {
        "swarm": (SwarmSpec, False),
        "strategy": (StrategySpec, True),
        "churn": (ChurnSpec, False),
        "reconfig": (ReconfigSpec, False),
        "transport": (TransportSpec, False),
        "measurement": (MeasurementSpec, True),
        "population": (PopulationSpec, False),
        "catalog": (CatalogSpec, False),
    },
    StrategySpec: {"summary": (SummarySpec, False)},
    ReconfigSpec: {"summary": (SummarySpec, False)},
    SwarmSpec: {"topology": (TopologySpec, False)},
    LinkRuleSpec: {"link": (LinkSpec, True)},
}

#: Nested spec-array fields per dataclass: ``field -> element class``.
_LIST_SPEC_FIELDS: Dict[type, Dict[str, type]] = {
    SwarmSpec: {"nodes": NodeSpec, "links": LinkRuleSpec},
}


def _spec_from_dict(cls: type, data: Mapping[str, Any]):
    """Build any spec dataclass from a mapping, recursing per the tables."""
    _check_keys(cls, data)
    kwargs = dict(data)
    for key, (child_cls, defaulted) in _NESTED_SPEC_FIELDS.get(cls, {}).items():
        child = kwargs.get(key)
        if child is not None:
            kwargs[key] = _spec_from_dict(child_cls, child)
        elif key in kwargs:
            kwargs[key] = child_cls() if defaulted else None
    for key, child_cls in _LIST_SPEC_FIELDS.get(cls, {}).items():
        value = kwargs.get(key, ())
        _require(
            isinstance(value, (list, tuple)),
            f"{cls.__name__} {key!r} must be an array of objects",
        )
        kwargs[key] = tuple(_spec_from_dict(child_cls, item) for item in value)
    if cls in _PARAMS_CLASSES and "params" in kwargs:
        params = kwargs["params"]
        _require(
            params is None or isinstance(params, (Mapping, list, tuple)),
            f"{cls.__name__} params must be an object of scalars",
        )
        kwargs["params"] = _freeze_params(params or ())
    return _construct(cls, kwargs)


def _spec_to_dict(obj: Any) -> Dict[str, Any]:
    """The inverse walker: any spec dataclass to plain JSON types."""
    out: Dict[str, Any] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if f.name == "params" and isinstance(obj, _PARAMS_CLASSES):
            out[f.name] = dict(value)
        elif dataclasses.is_dataclass(value):
            out[f.name] = _spec_to_dict(value)
        elif isinstance(value, tuple):
            out[f.name] = [_spec_to_dict(item) for item in value]
        else:
            out[f.name] = value
    return out


__all__ = [
    "SpecError",
    "ComponentDef",
    "COMPONENTS",
    "component_def",
    "LINK_KINDS",
    "SEEDING_RULES",
    "SEED_BASES",
    "NODE_ROLES",
    "RECONFIG_POLICIES",
    "ENGINES",
    "FIDELITIES",
    "WAVE_PROFILES",
    "LinkSpec",
    "LinkRuleSpec",
    "NodeSpec",
    "TopologySpec",
    "SwarmSpec",
    "CatalogSpec",
    "SummarySpec",
    "StrategySpec",
    "ChurnSpec",
    "ReconfigSpec",
    "TransportSpec",
    "MeasurementSpec",
    "PopulationSpec",
    "ExperimentSpec",
]
