"""Frozen, JSON-round-trippable experiment specifications.

An :class:`ExperimentSpec` is the single declarative description of an
experiment: which registered scenario interprets it, the master seed,
and the component specs — swarm population (:class:`SwarmSpec` of
:class:`NodeSpec` groups), link classes (:class:`LinkSpec` selected by
:class:`LinkRuleSpec`), sender strategy (:class:`StrategySpec`),
membership churn (:class:`ChurnSpec`), and measurement knobs
(:class:`MeasurementSpec`).  Specs are immutable values: they hash,
compare, and round-trip through JSON losslessly (``spec ==
ExperimentSpec.from_json(spec.to_json())``), so a spec file *is* the
experiment and can be diffed, archived, and re-run bit-identically.

Construction helpers for the scenario catalog live in
:mod:`repro.api.builders`; :func:`repro.api.run` executes a spec.
"""

import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

#: Link model kinds a :class:`LinkSpec` may name.
LINK_KINDS = ("constant", "latency_jitter", "gilbert_elliott")

#: Initial working-set rules a :class:`NodeSpec` may name.
SEEDING_RULES = ("empty", "fixed", "uniform")

#: Bases the seeding fraction may be taken against.
SEED_BASES = ("target", "distinct")

#: Node roles.
NODE_ROLES = ("peer", "source")

#: Reconfiguration policy kinds a :class:`ReconfigSpec` may name.
RECONFIG_POLICIES = ("informed", "random", "static")

#: Swarm execution engines a :class:`MeasurementSpec` may select.
ENGINES = ("reference", "columnar")

#: Simulation fidelities a :class:`MeasurementSpec` may select:
#: ``"packet"`` runs the per-symbol event engines, ``"flow"`` the
#: rate-equation population engine (:mod:`repro.flow`).
FIDELITIES = ("packet", "flow")

#: Arrival-wave shapes a :class:`PopulationSpec` may name.
WAVE_PROFILES = ("uniform", "flash", "diurnal")

#: The informed policy's historical defaults (admission threshold and
#: swap margin), shared by the spec fields and their unset checks.
DEFAULT_MIN_USEFULNESS = 0.02
DEFAULT_HYSTERESIS = 0.1


class SpecError(ValueError):
    """A spec failed validation or deserialisation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _require_int(value: object, name: str) -> None:
    """Strict integer check: a JSON 7.5 (or true) must not pass as 7."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{name} must be an integer, got {value!r}")


@dataclass(frozen=True)
class LinkSpec:
    """One link model class, by kind and parameters.

    ``shared_key`` couples links: every link built from rules whose
    specs carry the same non-empty key shares one loss process (the
    correlated-loss trunk of
    :func:`repro.api.builders.correlated_regional_loss`).
    """

    kind: str = "constant"
    rate: float = 1.0
    loss_rate: float = 0.0
    latency: float = 0.0
    jitter: float = 0.0
    p_good_bad: float = 0.05
    p_bad_good: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 0.5
    shared_key: str = ""

    def __post_init__(self) -> None:
        # Bounds mirror the link-model constructors exactly, so a spec
        # that validates can always be built.
        _require(self.kind in LINK_KINDS, f"unknown link kind {self.kind!r}; expected one of {LINK_KINDS}")
        _require(self.rate >= 0.0, "link rate must be non-negative")
        _require(self.latency >= 0.0, "latency must be non-negative")
        _require(self.jitter >= 0.0, "jitter must be non-negative")
        _require(0.0 <= self.loss_rate < 1.0, "loss_rate must lie in [0, 1)")
        for field_name in ("loss_good", "loss_bad"):
            value = getattr(self, field_name)
            _require(0.0 <= value <= 1.0, f"{field_name} must lie in [0, 1]")
        if self.kind == "gilbert_elliott":
            for field_name in ("p_good_bad", "p_bad_good"):
                value = getattr(self, field_name)
                _require(0.0 < value <= 1.0, f"{field_name} must lie in (0, 1]")


@dataclass(frozen=True)
class LinkRuleSpec:
    """Maps (sender class, receiver class) to a link class; ``*`` matches all.

    Rules are tried in order; the first match wins.
    """

    sender_class: str = "*"
    receiver_class: str = "*"
    link: LinkSpec = LinkSpec()

    def matches(self, sender_class: str, receiver_class: str) -> bool:
        return self.sender_class in ("*", sender_class) and self.receiver_class in (
            "*",
            receiver_class,
        )


@dataclass(frozen=True)
class NodeSpec:
    """A *group* of nodes sharing a role, class, and seeding rule.

    Members are named ``f"{name}{i}"`` for ``i in range(count)`` —
    except single-member source groups, which use ``name`` verbatim
    (the catalog's ``"src"``).

    Seeding rules (initial working set, sampled from the scenario RNG):

    * ``empty`` — starts with nothing;
    * ``fixed`` — exactly ``int(basis * seed_fraction)`` symbols;
    * ``uniform`` — a uniform count in ``[0, int(basis * seed_fraction))``;

    where ``basis`` is the swarm target or its distinct-symbol count per
    ``seed_basis``.
    """

    name: str = "p"
    count: int = 1
    role: str = "peer"
    node_class: str = ""
    seeding: str = "empty"
    seed_fraction: float = 0.0
    seed_basis: str = "target"
    max_connections: int = 3

    def __post_init__(self) -> None:
        _require_int(self.count, "node count")
        _require_int(self.max_connections, "max_connections")
        _require(self.count >= 0, "node count must be non-negative")
        _require(self.role in NODE_ROLES, f"unknown node role {self.role!r}; expected one of {NODE_ROLES}")
        _require(self.seeding in SEEDING_RULES, f"unknown seeding rule {self.seeding!r}; expected one of {SEEDING_RULES}")
        _require(self.seed_basis in SEED_BASES, f"unknown seed basis {self.seed_basis!r}; expected one of {SEED_BASES}")
        _require(0.0 <= self.seed_fraction <= 1.0, "seed_fraction must lie in [0, 1]")

    def member_ids(self) -> Tuple[str, ...]:
        """The concrete node ids this group expands to."""
        if self.role == "source" and self.count == 1:
            return (self.name,)
        return tuple(f"{self.name}{i}" for i in range(self.count))


@dataclass(frozen=True)
class SwarmSpec:
    """The population and wiring substrate of a swarm experiment."""

    target: int = 100
    distinct_multiplier: float = 1.2
    nodes: Tuple[NodeSpec, ...] = ()
    links: Tuple[LinkRuleSpec, ...] = ()
    reconfigure_every: int = 20

    def __post_init__(self) -> None:
        _require_int(self.target, "swarm target")
        _require_int(self.reconfigure_every, "reconfigure_every")
        _require(self.target > 0, "swarm target must be positive")
        _require(self.distinct_multiplier >= 1.0, "distinct_multiplier must be >= 1.0")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "links", tuple(self.links))

    @property
    def distinct_symbols(self) -> int:
        """Distinct symbols in the system (``int(multiplier * target)``)."""
        return int(self.target * self.distinct_multiplier)

    def group(self, name: str) -> NodeSpec:
        """The node group named ``name`` (:class:`SpecError` if absent)."""
        for ns in self.nodes:
            if ns.name == name:
                return ns
        raise SpecError(
            f"swarm has no node group {name!r}; groups: "
            f"{[ns.name for ns in self.nodes]}"
        )

    def link_for(self, sender_class: str, receiver_class: str) -> Optional[LinkSpec]:
        """First matching link rule's spec, or None (use path defaults)."""
        for rule in self.links:
            if rule.matches(sender_class, receiver_class):
                return rule.link
        return None


@dataclass(frozen=True)
class SummarySpec:
    """Which working-set summary peers exchange, and its parameters.

    ``kind`` names a registered :class:`~repro.reconcile.base.Summary`
    adapter (``"minwise"``, ``"bloom"``, ``"art"``, ``"cpi"``, ...);
    ``params`` holds that adapter's scalar build parameters, stored as
    sorted pairs so the spec stays hashable (read with :meth:`param`).
    A spec that validates always resolves to a buildable
    :class:`~repro.reconcile.SummaryPolicy` (:meth:`policy`).
    """

    kind: str = "bloom"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.kind), "summary kind must be non-empty")
        from repro.reconcile import UnknownSummaryError, summary_class

        try:
            summary_class(self.kind)
        except UnknownSummaryError as exc:
            raise SpecError(str(exc)) from None
        object.__setattr__(self, "params", _freeze_params(self.params))

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def policy(self):
        """The :class:`~repro.reconcile.SummaryPolicy` this spec names."""
        from repro.reconcile import SummaryPolicy

        return SummaryPolicy(kind=self.kind, params=self.params_dict())


@dataclass(frozen=True)
class ReconfigSpec:
    """How (and how often) the overlay adapts its peering.

    ``policy`` picks the adaptation arm: ``"informed"`` (summary-driven
    admission thresholds and utility rewiring — the paper's Section 4
    machinery), ``"random"`` (uninformed random rewiring, the control
    arm), or ``"static"`` (no rewiring at all).  ``summary`` names the
    registered :class:`~repro.reconcile.base.Summary` kind whose cards
    drive the informed estimates; ``None`` selects the historical
    min-wise calling card (128 permutations over the 2^32 universe,
    family seed 99), under which a run is bit-identical to the
    pre-spec behaviour — the parity tests pin it.

    ``interval`` is the epoch period in simulated time units (0 = the
    swarm's ``reconfigure_every``); ``jitter`` defers each epoch's pass
    by a uniform draw in ``[0, jitter)``; ``scan_budget`` caps how many
    candidate cards a receiver scans per epoch (0 = all).
    ``min_usefulness`` and ``hysteresis`` are the informed policy's
    admission threshold and swap margin.
    """

    policy: str = "informed"
    summary: Optional["SummarySpec"] = None
    interval: float = 0.0
    jitter: float = 0.0
    scan_budget: int = 0
    min_usefulness: float = DEFAULT_MIN_USEFULNESS
    hysteresis: float = DEFAULT_HYSTERESIS

    def __post_init__(self) -> None:
        _require(
            self.policy in RECONFIG_POLICIES,
            f"unknown reconfig policy {self.policy!r}; expected one of {RECONFIG_POLICIES}",
        )
        _require_int(self.scan_budget, "scan_budget")
        _require(self.interval >= 0.0, "reconfig interval must be non-negative")
        _require(self.jitter >= 0.0, "reconfig jitter must be non-negative")
        _require(self.scan_budget >= 0, "scan_budget must be non-negative")
        _require(
            0.0 <= self.min_usefulness <= 1.0, "min_usefulness must lie in [0, 1]"
        )
        _require(self.hysteresis >= 0.0, "hysteresis must be non-negative")
        if self.policy != "informed":
            # Only the informed policy consults these; accepting them on
            # the baseline arms would silently ignore a user's selection.
            _require(
                self.summary is None,
                f"reconfig policy {self.policy!r} consults no summaries; "
                "'summary' applies to the informed policy only",
            )
            _require(
                self.min_usefulness == DEFAULT_MIN_USEFULNESS
                and self.hysteresis == DEFAULT_HYSTERESIS,
                f"reconfig policy {self.policy!r} has no admission threshold "
                "or swap margin; min_usefulness/hysteresis apply to the "
                "informed policy only",
            )


@dataclass(frozen=True)
class TransportSpec:
    """Sender-side transport selection: congestion control and queues.

    ``policy`` names a registered :class:`~repro.transport.policies.
    TransportPolicy` kind (``"open_loop"``, ``"aimd"``,
    ``"bbr_lite"``); ``params`` holds that policy's scalar constructor
    parameters, stored as sorted pairs so the spec stays hashable
    (read with :meth:`param`).  A spec that validates always builds —
    the policy is instantiated once during validation.

    ``bottleneck_rate`` > 0 routes every connection's packets through
    one shared :class:`~repro.transport.queue.BottleneckQueue` (fluid
    FIFO drop-tail, ``bottleneck_buffer`` packets deep) draining at
    that rate; 0 leaves links unqueued (congestion control still
    applies over the existing per-link loss/latency models).
    ``rto_min``/``rto_max`` clamp the adaptive retransmission timeout.

    The ``open_loop`` policy with no bottleneck reproduces the
    historical open-loop sender behaviour exactly; a spec with
    ``transport`` unset skips the transport layer entirely (the
    bit-identical parity baseline).
    """

    policy: str = "open_loop"
    params: Tuple[Tuple[str, Any], ...] = ()
    bottleneck_rate: float = 0.0
    bottleneck_buffer: int = 32
    rto_min: float = 2.0
    rto_max: float = 64.0

    def __post_init__(self) -> None:
        _require(bool(self.policy), "transport policy must be non-empty")
        _require_int(self.bottleneck_buffer, "bottleneck_buffer")
        _require(
            self.bottleneck_rate >= 0.0, "bottleneck_rate must be non-negative"
        )
        _require(
            self.bottleneck_buffer >= 1,
            "bottleneck_buffer must hold at least 1 packet",
        )
        _require(self.rto_min > 0.0, "rto_min must be positive")
        _require(self.rto_max >= self.rto_min, "rto_max must be >= rto_min")
        object.__setattr__(self, "params", _freeze_params(self.params))
        from repro.transport import TransportError, validate_policy

        try:
            validate_policy(self.policy, self.params_dict())
        except TransportError as exc:
            raise SpecError(str(exc)) from None

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class StrategySpec:
    """Sender strategy selection (the Figure 5-8 legend) and summary budget.

    ``summary`` (a :class:`SummarySpec`) swaps the hardcoded
    min-wise/Bloom structures for any registered summary kind across
    the strategy, protocol, and session layers; ``None`` keeps the
    historical behaviour bit-identically.
    """

    name: str = "Recode/BF"
    bloom_bits_per_element: int = 8
    summary: Optional["SummarySpec"] = None

    def __post_init__(self) -> None:
        _require_int(self.bloom_bits_per_element, "bloom_bits_per_element")
        _require(self.bloom_bits_per_element > 0, "bloom_bits_per_element must be positive")


@dataclass(frozen=True)
class ChurnSpec:
    """Scheduled membership disturbance: join waves and departures."""

    join_waves: int = 0
    wave_interval: float = 0.0
    depart_node: str = ""
    depart_at: float = 0.0

    def __post_init__(self) -> None:
        _require_int(self.join_waves, "join_waves")
        _require(self.join_waves >= 0, "join_waves must be non-negative")
        _require(self.wave_interval >= 0.0, "wave_interval must be non-negative")


@dataclass(frozen=True)
class MeasurementSpec:
    """What to measure and how long to run."""

    max_ticks: int = 10_000
    resolution: float = 1.0
    record_series: bool = True
    max_packets: int = 0  # 0 = let the transfer loop derive its default
    #: Swarm execution engine: "reference" is the per-object event loop
    #: (the parity baseline), "columnar" the batched flat-array engine
    #: for large swarms.  Both produce identical seeded metrics; the
    #: default keeps every existing pin byte-identical.  Sweepable via
    #: ``with_override("measurement.engine", ...)``.
    engine: str = "reference"
    #: Simulation fidelity: "packet" runs the per-symbol event engines
    #: (every existing scenario), "flow" the rate-equation population
    #: engine of :mod:`repro.flow` — bulk transfer as closed-form
    #: goodput between real summary handshakes, for million-peer
    #: populations.  Only scenarios registered with flow support
    #: (``population_flash_crowd``) accept it.  Sweepable via
    #: ``with_override("measurement.fidelity", ...)``.
    fidelity: str = "packet"

    def __post_init__(self) -> None:
        _require_int(self.max_ticks, "max_ticks")
        _require_int(self.max_packets, "max_packets")
        _require(self.max_ticks > 0, "max_ticks must be positive")
        _require(self.resolution > 0, "resolution must be positive")
        _require(self.max_packets >= 0, "max_packets must be non-negative")
        _require(
            self.engine in ENGINES,
            f"engine must be one of {sorted(ENGINES)}, got {self.engine!r}",
        )
        _require(
            self.fidelity in FIDELITIES,
            f"fidelity must be one of {sorted(FIDELITIES)}, got {self.fidelity!r}",
        )


@dataclass(frozen=True)
class PopulationSpec:
    """A population-scale demand model for the flow-fidelity scenarios.

    Describes *who wants what, when*: ``size`` peers spread over
    ``objects`` distinct contents by a Zipf popularity law
    (``zipf_skew``), arriving in ``waves`` join waves shaped by
    ``wave_profile`` every ``wave_interval`` time units, with a
    ``seeded_fraction`` of each object's audience pre-seeded as two
    complementary mirror groups (the paper's Figure 1 environment at
    population scale).  ``rate``/``loss_rate`` describe the per-
    connection goodput; ``rate_tiers``/``rate_spread`` split each
    arrival cohort into bandwidth classes with multipliers spanning
    ``[1-spread, 1+spread]``.  ``sample_cap`` bounds the sampled-ID
    sketch each flow-level cohort representative carries (the set the
    real reconciliation summaries are built over at handshake time).
    """

    size: int = 10_000
    objects: int = 1
    zipf_skew: float = 0.8
    waves: int = 4
    wave_profile: str = "flash"
    wave_interval: float = 10.0
    seeded_fraction: float = 0.1
    rate: float = 2.0
    loss_rate: float = 0.01
    rate_tiers: int = 2
    rate_spread: float = 0.25
    sample_cap: int = 256
    max_connections: int = 3

    def __post_init__(self) -> None:
        for name in ("size", "objects", "waves", "rate_tiers", "sample_cap",
                     "max_connections"):
            _require_int(getattr(self, name), name)
        _require(self.size >= 1, "population size must be at least 1")
        _require(self.objects >= 1, "objects must be at least 1")
        _require(self.zipf_skew >= 0.0, "zipf_skew must be non-negative")
        _require(self.waves >= 1, "need at least one arrival wave")
        _require(
            self.wave_profile in WAVE_PROFILES,
            f"unknown wave profile {self.wave_profile!r}; expected one of "
            f"{WAVE_PROFILES}",
        )
        _require(self.wave_interval > 0.0, "wave_interval must be positive")
        _require(
            0.0 <= self.seeded_fraction < 1.0,
            "seeded_fraction must lie in [0, 1)",
        )
        _require(self.rate > 0.0, "population rate must be positive")
        _require(0.0 <= self.loss_rate < 1.0, "loss_rate must lie in [0, 1)")
        _require(self.rate_tiers >= 1, "need at least one rate tier")
        _require(
            0.0 <= self.rate_spread < 1.0, "rate_spread must lie in [0, 1)"
        )
        _require(self.sample_cap >= 16, "sample_cap must be at least 16")
        _require(self.max_connections >= 1, "max_connections must be at least 1")


def _freeze_params(params: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalise scenario extras to a sorted tuple of (key, value) pairs."""
    if isinstance(params, Mapping):
        items = list(params.items())
    else:
        try:
            items = [(key, value) for key, value in params]
        except (TypeError, ValueError) as exc:
            raise SpecError(
                "params must be a mapping or a sequence of (key, value) "
                f"pairs: {exc}"
            ) from exc
    seen = set()
    for key, value in items:
        _require(isinstance(key, str), "param keys must be strings")
        _require(key not in seen, f"duplicate param key {key!r}")
        seen.add(key)
        _require(
            value is None or isinstance(value, (bool, int, float, str)),
            f"param {key!r} must be a JSON scalar, got {type(value).__name__}",
        )
    return tuple(sorted(items, key=lambda item: item[0]))


@dataclass(frozen=True)
class ExperimentSpec:
    """The complete declarative description of one experiment.

    ``scenario`` names the registered interpreter
    (:mod:`repro.api.registry`); ``seed`` is the master seed every RNG
    in the run descends from; ``params`` holds scenario-specific scalar
    extras that have no component home (stored as sorted pairs so the
    spec stays hashable; read with :meth:`param`).
    """

    scenario: str
    seed: int = 0
    swarm: Optional[SwarmSpec] = None
    strategy: StrategySpec = StrategySpec()
    churn: Optional[ChurnSpec] = None
    reconfig: Optional[ReconfigSpec] = None
    transport: Optional[TransportSpec] = None
    measurement: MeasurementSpec = MeasurementSpec()
    population: Optional[PopulationSpec] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.scenario), "scenario name must be non-empty")
        _require_int(self.seed, "spec seed")
        object.__setattr__(self, "params", _freeze_params(self.params))

    # -- params accessors ---------------------------------------------------

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def with_params(self, **updates: Any) -> "ExperimentSpec":
        """A copy with ``params`` entries added/replaced."""
        merged = self.params_dict()
        merged.update(updates)
        return dataclasses.replace(self, params=_freeze_params(merged))

    def with_override(self, path: str, value: Any) -> "ExperimentSpec":
        """A copy with the dotted-path field ``path`` replaced by ``value``.

        The campaign grid's application mechanism: ``path`` names any
        scalar spec field by its dotted location (``"strategy.name"``,
        ``"swarm.target"``, ``"params.correlation"``,
        ``"strategy.summary.kind"``, ``"churn.depart_at"``...).
        ``params`` segments address the scalar-extras mappings; a
        ``None`` component on the way (no churn, no summary) is
        instantiated with its defaults first.  Unknown paths, non-scalar
        targets (node/link arrays), and values the component rejects all
        fold into :class:`SpecError`.
        """
        parts = path.split(".")
        _require(all(parts) and parts[0], f"override path {path!r} is malformed")
        return _override(self, parts, value, path)

    @property
    def summary(self) -> Optional[SummarySpec]:
        """The experiment's summary selection (``strategy.summary``)."""
        return self.strategy.summary

    def with_summary(self, kind: str, **params: Any) -> "ExperimentSpec":
        """A copy selecting a summary kind for the whole experiment."""
        return dataclasses.replace(
            self,
            strategy=dataclasses.replace(
                self.strategy, summary=SummarySpec(kind=kind, params=params)
            ),
        )

    def with_reconfig(self, policy: str = "informed", **fields: Any) -> "ExperimentSpec":
        """A copy selecting an overlay reconfiguration policy.

        ``summary_kind``/``summary_params`` select the summary the
        informed estimates flow through; every other keyword maps to a
        :class:`ReconfigSpec` field.
        """
        kind = fields.pop("summary_kind", None)
        params = fields.pop("summary_params", None)
        summary = SummarySpec(kind=kind, params=params or ()) if kind else None
        return dataclasses.replace(
            self, reconfig=ReconfigSpec(policy=policy, summary=summary, **fields)
        )

    def with_transport(self, policy: str = "open_loop", **fields: Any) -> "ExperimentSpec":
        """A copy selecting a sender transport policy.

        ``params`` (a mapping) carries the policy's constructor
        parameters; every other keyword maps to a
        :class:`TransportSpec` field.
        """
        params = fields.pop("params", None) or ()
        return dataclasses.replace(
            self, transport=TransportSpec(policy=policy, params=params, **fields)
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON-types dict; inverse of :meth:`from_dict`."""
        out = dataclasses.asdict(self)
        out["params"] = self.params_dict()
        if self.strategy.summary is not None:
            out["strategy"]["summary"]["params"] = self.strategy.summary.params_dict()
        if self.reconfig is not None and self.reconfig.summary is not None:
            out["reconfig"]["summary"]["params"] = self.reconfig.summary.params_dict()
        if self.transport is not None:
            out["transport"]["params"] = self.transport.params_dict()
        if self.swarm is not None:
            out["swarm"]["nodes"] = [dataclasses.asdict(n) for n in self.swarm.nodes]
            out["swarm"]["links"] = [dataclasses.asdict(r) for r in self.swarm.links]
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        _check_keys(cls, data)
        _require("scenario" in data, "spec is missing the 'scenario' key")
        swarm = data.get("swarm")
        churn = data.get("churn")
        reconfig = data.get("reconfig")
        transport = data.get("transport")
        population = data.get("population")
        return cls(
            scenario=data["scenario"],
            seed=data.get("seed", 0),
            swarm=_swarm_from_dict(swarm) if swarm is not None else None,
            strategy=_strategy_from_dict(data.get("strategy")),
            churn=_component_from_dict(ChurnSpec, churn) if churn is not None else None,
            reconfig=_reconfig_from_dict(reconfig) if reconfig is not None else None,
            transport=_transport_from_dict(transport) if transport is not None else None,
            measurement=_component_from_dict(MeasurementSpec, data.get("measurement")),
            population=_component_from_dict(PopulationSpec, population)
            if population is not None
            else None,
            params=_freeze_params(data.get("params", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


#: Components :meth:`ExperimentSpec.with_override` may instantiate when
#: a path traverses a field currently set to ``None``.
_DEFAULTABLE_COMPONENTS = {
    "swarm": SwarmSpec,
    "churn": ChurnSpec,
    "summary": SummarySpec,
    "reconfig": ReconfigSpec,
    "transport": TransportSpec,
    "population": PopulationSpec,
}


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _override(obj: Any, parts: list, value: Any, full_path: str):
    """Recursive core of :meth:`ExperimentSpec.with_override`."""
    head, rest = parts[0], parts[1:]
    # `params.KEY` addresses the scalar-extras mapping of the spec (or
    # of a Summary/TransportSpec) rather than a dataclass field.
    if head == "params" and isinstance(obj, (ExperimentSpec, SummarySpec, TransportSpec)):
        _require(
            len(rest) == 1,
            f"override {full_path!r}: 'params' takes exactly one key segment",
        )
        _require(_is_scalar(value), f"override {full_path!r}: value must be a JSON scalar")
        if isinstance(obj, ExperimentSpec):
            return obj.with_params(**{rest[0]: value})
        merged = obj.params_dict()
        merged[rest[0]] = value
        if isinstance(obj, TransportSpec):
            try:
                return dataclasses.replace(obj, params=_freeze_params(merged))
            except SpecError:
                raise
            except (TypeError, ValueError) as exc:
                raise SpecError(f"override {full_path!r}: {exc}") from exc
        return _construct(SummarySpec, {"kind": obj.kind, "params": _freeze_params(merged)})
    known = {f.name for f in fields(obj)}
    _require(
        head in known,
        f"override {full_path!r}: {type(obj).__name__} has no field {head!r} "
        f"(fields: {sorted(known)})",
    )
    if not rest:
        _require(_is_scalar(value), f"override {full_path!r}: value must be a JSON scalar")
        current = getattr(obj, head)
        _require(
            not isinstance(current, tuple),
            f"override {full_path!r}: field {head!r} is an array; only scalar "
            f"fields can be overridden",
        )
        try:
            return dataclasses.replace(obj, **{head: value})
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(f"override {full_path!r}: {exc}") from exc
    child = getattr(obj, head)
    if child is None:
        default = _DEFAULTABLE_COMPONENTS.get(head)
        _require(
            default is not None,
            f"override {full_path!r}: {type(obj).__name__}.{head} is unset and "
            f"has no default to extend",
        )
        child = default()
    _require(
        dataclasses.is_dataclass(child),
        f"override {full_path!r}: field {head!r} is not a component spec",
    )
    return dataclasses.replace(obj, **{head: _override(child, rest, value, full_path)})


def _check_keys(cls: type, data: Any) -> None:
    """Require ``data`` to be a mapping using only ``cls``'s field names."""
    name = "spec" if cls is ExperimentSpec else cls.__name__
    _require(isinstance(data, Mapping), f"{name} must be a JSON object")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    _require(
        not unknown,
        f"unknown {name} keys {sorted(unknown)}; expected a subset of {sorted(known)}",
    )


def _construct(cls: type, kwargs: Mapping[str, Any]):
    """Instantiate a spec dataclass, folding bad types into SpecError."""
    try:
        return cls(**kwargs)
    except SpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecError(f"invalid {cls.__name__}: {exc}") from exc


def _component_from_dict(cls: type, data: Optional[Mapping[str, Any]]):
    """Build a flat component dataclass from a mapping (defaults if None)."""
    if data is None:
        return cls()
    _check_keys(cls, data)
    return _construct(cls, data)


def _summary_from_dict(data: Optional[Mapping[str, Any]]) -> Optional[SummarySpec]:
    if data is None:
        return None
    _check_keys(SummarySpec, data)
    params = data.get("params", ())
    _require(
        params is None or isinstance(params, (Mapping, list, tuple)),
        "SummarySpec params must be an object of scalars",
    )
    return _construct(
        SummarySpec,
        {"kind": data.get("kind", "bloom"), "params": _freeze_params(params or ())},
    )


def _reconfig_from_dict(data: Mapping[str, Any]) -> ReconfigSpec:
    _check_keys(ReconfigSpec, data)
    kwargs = dict(data)
    kwargs["summary"] = _summary_from_dict(data.get("summary"))
    return _construct(ReconfigSpec, kwargs)


def _transport_from_dict(data: Mapping[str, Any]) -> TransportSpec:
    _check_keys(TransportSpec, data)
    kwargs = dict(data)
    params = data.get("params", ())
    _require(
        params is None or isinstance(params, (Mapping, list, tuple)),
        "TransportSpec params must be an object of scalars",
    )
    kwargs["params"] = _freeze_params(params or ())
    return _construct(TransportSpec, kwargs)


def _strategy_from_dict(data: Optional[Mapping[str, Any]]) -> StrategySpec:
    if data is None:
        return StrategySpec()
    _check_keys(StrategySpec, data)
    kwargs = dict(data)
    kwargs["summary"] = _summary_from_dict(data.get("summary"))
    return _construct(StrategySpec, kwargs)


def _spec_list(data: Mapping[str, Any], key: str, parent: str) -> tuple:
    value = data.get(key, ())
    _require(
        isinstance(value, (list, tuple)),
        f"{parent} {key!r} must be an array of objects",
    )
    return tuple(value)


def _swarm_from_dict(data: Mapping[str, Any]) -> SwarmSpec:
    _check_keys(SwarmSpec, data)
    kwargs = dict(data)
    kwargs["nodes"] = tuple(
        _component_from_dict(NodeSpec, n)
        for n in _spec_list(data, "nodes", "SwarmSpec")
    )
    kwargs["links"] = tuple(
        _rule_from_dict(r) for r in _spec_list(data, "links", "SwarmSpec")
    )
    return _construct(SwarmSpec, kwargs)


def _rule_from_dict(data: Mapping[str, Any]) -> LinkRuleSpec:
    _check_keys(LinkRuleSpec, data)
    return LinkRuleSpec(
        sender_class=data.get("sender_class", "*"),
        receiver_class=data.get("receiver_class", "*"),
        link=_component_from_dict(LinkSpec, data.get("link")),
    )


__all__ = [
    "SpecError",
    "LINK_KINDS",
    "SEEDING_RULES",
    "SEED_BASES",
    "NODE_ROLES",
    "RECONFIG_POLICIES",
    "ENGINES",
    "FIDELITIES",
    "WAVE_PROFILES",
    "LinkSpec",
    "LinkRuleSpec",
    "NodeSpec",
    "SwarmSpec",
    "SummarySpec",
    "StrategySpec",
    "ChurnSpec",
    "ReconfigSpec",
    "TransportSpec",
    "MeasurementSpec",
    "PopulationSpec",
    "ExperimentSpec",
]
