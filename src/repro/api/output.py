"""Output-path hygiene shared by the CLI and the campaign executor.

One rule everywhere a result lands on disk: parent directories are
created on demand, and an existing file is never silently clobbered —
the caller must opt in (``--force``, or ``--resume`` for campaign
directories, which reuses the cells instead of rewriting them).
"""

import os

from repro.api.spec import SpecError


def prepare_out_file(path: str, force: bool = False) -> str:
    """Make ``path`` safe to write: create parents, refuse to clobber.

    Returns ``path``; raises :class:`SpecError` (CLI exit status 2)
    when the file already exists and ``force`` is not set.
    """
    parent = os.path.dirname(os.path.abspath(path))
    try:
        os.makedirs(parent, exist_ok=True)
    except OSError as exc:
        raise SpecError(f"cannot create output directory for {path!r}: {exc}") from exc
    if os.path.exists(path) and not force:
        raise SpecError(
            f"output file {path!r} already exists; pass --force to overwrite"
        )
    return path


__all__ = ["prepare_out_file"]
