"""Deterministic demand-model arithmetic for population-scale runs.

The flow engine and the packet-fidelity population builder both consume
these helpers, so the two fidelities construct byte-identical
populations: the same object popularity split, the same wave sizes at
the same times, the same bandwidth-tier membership.  Everything here is
integer largest-remainder apportionment over closed-form weights — no
RNG, no floats surviving into membership counts — which is also what
keeps the arithmetic identical with and without numpy.
"""

import math
from typing import List, Sequence


def _spec_error(message: str) -> Exception:
    """A SpecError, imported lazily: ``repro.api`` pulls this module in
    during its own package init (via ``repro.api.population``), so a
    module-level import here would be circular whenever ``repro.flow``
    is imported first."""
    from repro.api.spec import SpecError

    return SpecError(message)


def apportion(total: int, weights: Sequence[float]) -> List[int]:
    """Split ``total`` integer units across ``weights`` proportionally.

    Largest-remainder (Hamilton) apportionment: exact sum, deterministic,
    ties broken by position.  Zero or negative weights get nothing unless
    every weight is non-positive, which is rejected.
    """
    if total < 0:
        raise _spec_error("cannot apportion a negative total")
    if not weights:
        raise _spec_error("cannot apportion across zero buckets")
    mass = float(sum(w for w in weights if w > 0))
    if mass <= 0.0:
        raise _spec_error("apportion needs at least one positive weight")
    quotas = [total * max(0.0, w) / mass for w in weights]
    counts = [int(q) for q in quotas]
    shortfall = total - sum(counts)
    # Hand the leftover units to the largest fractional remainders.
    order = sorted(
        range(len(weights)), key=lambda i: (quotas[i] - counts[i], -i), reverse=True
    )
    for i in order[:shortfall]:
        counts[i] += 1
    return counts


def zipf_shares(objects: int, skew: float) -> List[float]:
    """Popularity weight of each object: ``1 / rank^skew`` (rank from 1)."""
    if objects < 1:
        raise _spec_error("need at least one object")
    return [1.0 / (rank ** skew) for rank in range(1, objects + 1)]


def wave_weights(profile: str, waves: int) -> List[float]:
    """Relative size of each arrival wave under a named profile.

    ``uniform`` — equal waves; ``flash`` — a front-loaded geometric
    rush (each wave half the previous); ``diurnal`` — one sinusoidal
    day, arrivals peaking mid-sequence.
    """
    if waves < 1:
        raise _spec_error("need at least one arrival wave")
    if profile == "uniform":
        return [1.0] * waves
    if profile == "flash":
        return [0.5 ** w for w in range(waves)]
    if profile == "diurnal":
        return [1.0 - math.cos(2.0 * math.pi * (w + 0.5) / waves) for w in range(waves)]
    raise _spec_error(f"unknown wave profile {profile!r}")


def tier_multipliers(tiers: int, spread: float) -> List[float]:
    """Per-tier goodput multipliers spanning ``[1-spread, 1+spread]``.

    One tier collapses to the nominal rate; the mean multiplier is
    always 1.0, so tiering redistributes bandwidth without changing the
    population's aggregate capacity.
    """
    if tiers < 1:
        raise _spec_error("need at least one rate tier")
    if not 0.0 <= spread < 1.0:
        raise _spec_error("rate spread must lie in [0, 1)")
    if tiers == 1:
        return [1.0]
    return [
        1.0 - spread + 2.0 * spread * k / (tiers - 1) for k in range(tiers)
    ]


__all__ = ["apportion", "zipf_shares", "wave_weights", "tier_multipliers"]
