"""The flow-level population engine: rate equations between handshakes.

The packet engines (:mod:`repro.overlay.simulator`, :mod:`repro.overlay.
columnar`) move individual encoded symbols and top out around 10k
nodes.  :class:`FlowSimulator` trades symbol resolution for population
scale: peers are aggregated into *cohorts* (same object, same arrival
wave, same initial seeding), each cohort split into bandwidth *tiers*,
and bulk transfer advances as closed-form goodput over each
inter-handshake window — per-window cost is O(cohorts x tiers), so a
million-peer run costs the same wall-clock as a hundred-peer run.

What stays real is exactly what the paper studies — the reconciliation
control plane.  Every cohort carries a representative
:class:`~repro.overlay.node.OverlayNode` holding a *sampled-ID sketch*
of the cohort working set (capped at ``sample_cap`` ids, scaled by the
cohort's sampling ratio), and at every epoch boundary genuine
:mod:`repro.reconcile` summaries are built over those sets and fed
through the PR-5 peering machinery —
:class:`~repro.overlay.reconfiguration.SketchAdmission`,
:class:`~repro.overlay.reconfiguration.UtilityRewiring`,
:class:`~repro.overlay.reconfiguration.RandomRewiring` — with control
bytes charged at each card's real ``wire_bytes``.  "Informed vs
random" therefore remains measurable at 1M peers, through the same
policy objects the packet engines use.

Data-plane usefulness, by contrast, is *ground truth*: the novel
fraction a sender offers is the exact overlap of the two sampled-ID
sets (the summaries only steer decisions, as in the packet engines,
where transfer usefulness is decided by actual working-set membership).
Senders running the uninformed ``Random`` strategy draw blind — their
useful yield follows the coupon-collector law ``pool * (1 -
exp(-delivered/|sender|))`` — while informed strategies reconcile
first and send only novel symbols, ``min(delivered, pool)``.

Everything is pure scalar Python over cohort aggregates: results are
bit-identical with and without numpy (numpy only accelerates the
min-wise card builds, whose outputs are integer minima either way).
"""

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.flow.demand import apportion, tier_multipliers
from repro.overlay.node import OverlayNode

#: Sender strategies that draw symbols blind (no reconciliation before
#: sending); every other registered strategy reconciles first.
UNINFORMED_STRATEGIES = ("Random",)

#: Rep-universe offset of each object's source (mirrors the
#: ``random_overlay`` fresh-id spacing, so minted ids never collide
#: with sampled content ids or another object's stream).
_FRESH_BASE = 1 << 40
_FRESH_STRIDE = 1 << 20
_OBJECT_STRIDE = 1 << 20


@dataclass(frozen=True)
class CohortDef:
    """One population cohort: peers indistinguishable to the flow model.

    ``initial_fraction`` of ``demand`` is pre-seeded; ``slice_index``
    picks which end of the object's shuffled symbol permutation the
    seed slice comes from (0 = front, 1 = back), so two mirror cohorts
    with complementary slices hold disjoint content — the Figure 1
    environment at population scale.  ``distinct`` is the object's
    distinct-symbol count (shared by every cohort of the object).
    """

    cohort_id: str
    object_id: int
    members: int
    arrival: float = 0.0
    demand: int = 100
    distinct: int = 120
    initial_fraction: float = 0.0
    slice_index: int = 0

    def __post_init__(self) -> None:
        if self.members < 1:
            raise ValueError("cohort members must be positive")
        if self.demand < 1:
            raise ValueError("cohort demand must be positive")
        if self.distinct < self.demand:
            raise ValueError("distinct must be at least demand")
        if not 0.0 <= self.initial_fraction < 1.0:
            raise ValueError("initial_fraction must lie in [0, 1)")
        if self.slice_index not in (0, 1):
            raise ValueError("slice_index must be 0 or 1")
        if self.arrival < 0.0:
            raise ValueError("arrival must be non-negative")


@dataclass
class _Tier:
    """One bandwidth class inside a cohort (identical members)."""

    members: int
    mult: float
    count: float
    completed_at: Optional[float] = None


class _Cohort:
    """Runtime state of one cohort: tiers + the summary representative."""

    def __init__(self, definition: CohortDef, rep: OverlayNode, scale: float,
                 tiers: List[_Tier]):
        self.definition = definition
        self.rep = rep
        self.scale = scale  # sampled-ID ids per real symbol
        self.tiers = tiers
        self.senders: List["_Cohort"] = []
        self.arrived = False
        self.carry = 0.0  # fractional sampled-ID accumulation
        self.is_source = rep.is_source

    @property
    def cohort_id(self) -> str:
        return self.rep.node_id

    @property
    def members(self) -> int:
        return self.definition.members

    def mean_count(self) -> float:
        """Member-weighted mean working-set size (real symbol units)."""
        if self.is_source:
            return float(self.definition.demand)
        total = sum(t.count * t.members for t in self.tiers)
        return total / self.members

    def is_complete(self) -> bool:
        return self.is_source or all(t.completed_at is not None for t in self.tiers)


@dataclass
class FlowReport:
    """What a flow-level run measured; mirrors
    :class:`~repro.overlay.simulator.SimulationReport`'s counters, plus
    the population bookkeeping the scale demands (per-cohort completion
    batches instead of a per-node dict)."""

    ticks: int
    all_complete: bool
    population: int
    peers_completed: int
    #: (completion time, member count) per completed cohort tier.
    completions: List[Tuple[float, int]] = field(default_factory=list)
    packets_sent: float = 0.0
    packets_lost: float = 0.0
    packets_useful: float = 0.0
    reconfigurations: int = 0
    reconfig_epochs: int = 0
    control_bytes: int = 0
    events: List[str] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """Useful fraction of delivered traffic (loss excluded)."""
        delivered = self.packets_sent - self.packets_lost
        return self.packets_useful / delivered if delivered > 0 else 0.0

    @property
    def last_completion_time(self) -> Optional[float]:
        return max((t for t, _ in self.completions), default=None)

    @property
    def mean_completion_time(self) -> Optional[float]:
        members = sum(m for _, m in self.completions)
        if not members:
            return None
        return sum(t * m for t, m in self.completions) / members


class FlowSimulator:
    """Advance cohort bulk transfers as rate equations between epochs.

    Args:
        cohorts: the population's :class:`CohortDef` s; one source per
            distinct ``object_id`` is created automatically.
        rate: per-connection nominal goodput (symbols per time unit).
        loss_rate: stationary loss each connection folds in (Gilbert-
            Elliott links fold to their stationary loss upstream).
        interval: epoch period — the handshake/rewiring cadence and the
            flow-integration window.
        rate_tiers / rate_spread: bandwidth classes per cohort
            (:func:`~repro.flow.demand.tier_multipliers`).
        max_connections: sender slots per cohort.
        admission / rewiring: the PR-5 peering policies, operating on
            cohort representatives (``None`` rewiring = static peering).
        scan_budget: candidate cards scanned per receiver per epoch
            (0 = all).
        strategy_name: data-plane sender strategy; only
            ``"Random"`` transfers blind, every other registered
            strategy reconciles before sending.
        sample_cap: sampled-ID sketch size cap per representative.
        rng: the run's master RNG (construction + policy draws).
    """

    def __init__(
        self,
        cohorts: Sequence[CohortDef],
        *,
        rate: float,
        loss_rate: float = 0.0,
        interval: float = 5.0,
        rate_tiers: int = 1,
        rate_spread: float = 0.0,
        max_connections: int = 3,
        admission=None,
        rewiring=None,
        scan_budget: int = 0,
        strategy_name: str = "Random",
        sample_cap: int = 256,
        rng: Optional[random.Random] = None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must lie in [0, 1)")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if sample_cap < 1:
            raise ValueError("sample_cap must be positive")
        self.rate = rate
        self.loss_rate = loss_rate
        self.interval = float(interval)
        self.max_connections = max_connections
        self.admission = admission
        self.rewiring = rewiring
        self.scan_budget = scan_budget
        self.informed_strategy = strategy_name not in UNINFORMED_STRATEGIES
        self.sample_cap = sample_cap
        self.rng = rng if rng is not None else random.Random(0)

        self.reconfigurations = 0
        self.reconfig_epochs = 0
        self.control_bytes = 0
        self.packets_sent = 0.0
        self.packets_lost = 0.0
        self.packets_useful = 0.0
        self.events: List[str] = []

        mults = tier_multipliers(rate_tiers, rate_spread)
        self.sources: Dict[int, _Cohort] = {}
        self.cohorts: List[_Cohort] = []
        self._by_node_id: Dict[str, _Cohort] = {}
        self._object_perms: Dict[int, List[int]] = {}
        seen_ids = set()
        for d in cohorts:
            if d.cohort_id in seen_ids:
                raise ValueError(f"duplicate cohort id {d.cohort_id!r}")
            seen_ids.add(d.cohort_id)
            self._ensure_source(d)
            self.cohorts.append(self._build_cohort(d, mults))
        for c in self.cohorts:
            self._by_node_id[c.cohort_id] = c
        self.population = sum(c.members for c in self.cohorts)

    # -- construction -------------------------------------------------------

    def _ensure_source(self, d: CohortDef) -> None:
        """One always-on origin server per object, minting fresh ids."""
        if d.object_id in self.sources:
            return
        index = len(self.sources)
        rep = OverlayNode(
            f"origin{d.object_id}",
            d.demand,
            is_source=True,
            fresh_id_start=_FRESH_BASE + index * _FRESH_STRIDE,
        )
        source = _Cohort(
            CohortDef(
                cohort_id=rep.node_id,
                object_id=d.object_id,
                members=1,
                demand=d.demand,
                distinct=d.distinct,
            ),
            rep,
            scale=1.0,
            tiers=[],
        )
        source.arrived = True
        self.sources[d.object_id] = source
        self._by_node_id[rep.node_id] = source

    def _object_perm(self, d: CohortDef) -> List[int]:
        """The object's shuffled sampled-ID universe (built once)."""
        perm = self._object_perms.get(d.object_id)
        if perm is None:
            rep_target = max(1, min(d.demand, self.sample_cap))
            scale = rep_target / d.demand
            distinct_rep = max(rep_target, int(round(scale * d.distinct)))
            base = d.object_id * _OBJECT_STRIDE
            perm = list(range(base, base + distinct_rep))
            self.rng.shuffle(perm)
            self._object_perms[d.object_id] = perm
        return perm

    def _build_cohort(self, d: CohortDef, mults: List[float]) -> _Cohort:
        rep_target = max(1, min(d.demand, self.sample_cap))
        scale = rep_target / d.demand
        initial = int(d.demand * d.initial_fraction)
        perm = self._object_perm(d)
        rep_initial = min(len(perm), int(round(scale * initial)))
        if d.slice_index == 0:
            rep_ids = perm[:rep_initial]
        else:
            rep_ids = perm[len(perm) - rep_initial:]
        rep = OverlayNode(
            d.cohort_id,
            rep_target,
            initial_ids=rep_ids,
            max_connections=self.max_connections,
        )
        members = apportion(d.members, [1.0] * len(mults))
        tiers = [
            _Tier(members=m, mult=mult, count=float(initial))
            for m, mult in zip(members, mults)
            if m > 0
        ]
        return _Cohort(d, rep, scale, tiers)

    # -- run loop -----------------------------------------------------------

    def run(self, max_ticks: int = 10_000) -> FlowReport:
        """Advance to completion or ``max_ticks``; collect the report."""
        horizon = float(max_ticks)
        arrivals = sorted(
            (c.definition.arrival, i, c) for i, c in enumerate(self.cohorts)
        )
        pending = list(arrivals)
        now = 0.0
        next_epoch = self.interval
        while pending and pending[0][0] <= now:
            self._arrive(pending.pop(0)[2], now)
        while now < horizon:
            t_next = min(next_epoch, horizon)
            if pending:
                t_next = min(t_next, pending[0][0])
            self._advance(now, t_next)
            now = t_next
            while pending and pending[0][0] <= now:
                self._arrive(pending.pop(0)[2], now)
            if now >= next_epoch - 1e-9:
                self._reconfigure(now)
                next_epoch += self.interval
            if not pending and all(c.is_complete() for c in self.cohorts):
                break
        return self._report(now, horizon)

    def _arrive(self, cohort: _Cohort, now: float) -> None:
        cohort.arrived = True
        self.events.append(
            f"t={now:g} cohort {cohort.cohort_id} joins "
            f"({cohort.members} peers)"
        )
        # Every cohort bootstraps from its object's origin, subject to
        # admission (sources are always admitted).
        source = self.sources[cohort.definition.object_id]
        self._connect(source, cohort)

    def _connect(self, sender: _Cohort, receiver: _Cohort) -> bool:
        if receiver.is_source or sender is receiver:
            return False
        if sender in receiver.senders:
            return False
        if len(receiver.senders) >= self.max_connections:
            return False
        if self.admission is not None and not self.admission.admit(
            receiver.rep, sender.rep
        ):
            return False
        receiver.senders.append(sender)
        return True

    # -- control plane: epoch handshakes ------------------------------------

    def _reconfigure(self, now: float) -> None:
        """One epoch: real summary cards, PR-5 policies, honest bytes."""
        if self.rewiring is None:
            return  # static peering: boundaries are free
        self.reconfig_epochs += 1
        scheme = getattr(self.rewiring, "scheme", None)
        if scheme is not None:
            # One usefulness memo per epoch, shared by admission and
            # rewiring — the packet engines' scan-once-decide-many
            # pattern.  Valid only within the epoch (sets then change).
            scheme.set_memo({})
        try:
            for receiver in self.cohorts:
                if not receiver.arrived or receiver.is_complete():
                    continue
                obj = receiver.definition.object_id
                candidates = [self.sources[obj]] + [
                    c
                    for c in self.cohorts
                    if c.definition.object_id == obj and c.arrived and c is not receiver
                ]
                budget = self.scan_budget
                if budget and budget < len(candidates):
                    candidates = self.rng.sample(candidates, budget)
                if scheme is not None:
                    for c in candidates:
                        if c.is_source or len(c.rep.working_set) == 0:
                            continue
                        self.control_bytes += scheme.card_wire_bytes(c.rep)
                drops, adds = self.rewiring.rewire(
                    receiver.rep,
                    [s.rep for s in receiver.senders],
                    [c.rep for c in candidates],
                )
                for rep in drops:
                    dropped = self._by_node_id[rep.node_id]
                    if dropped in receiver.senders:
                        receiver.senders.remove(dropped)
                for rep in adds:
                    if self._connect(self._by_node_id[rep.node_id], receiver):
                        self.reconfigurations += 1
        finally:
            if scheme is not None:
                scheme.set_memo(None)

    # -- data plane: closed-form flow advancement ---------------------------

    def _novel_fraction(self, receiver: _Cohort, sender: _Cohort) -> float:
        """Ground-truth novelty from the sampled-ID sets (not summaries)."""
        if sender.is_source:
            return 1.0
        theirs = set(sender.rep.working_set.ids)
        if not theirs:
            return 0.0
        ours = set(receiver.rep.working_set.ids)
        return 1.0 - len(ours & theirs) / len(theirs)

    def _advance(self, t0: float, t1: float) -> None:
        """Integrate every incomplete tier's transfer over [t0, t1)."""
        window = t1 - t0
        if window <= 0:
            return
        # Simultaneous-update snapshot: every receiver sees its senders'
        # start-of-window state.
        counts = {c.cohort_id: c.mean_count() for c in self.cohorts}
        rep_updates: List[Tuple[_Cohort, _Cohort, int]] = []
        for receiver in self.cohorts:
            if not receiver.arrived or receiver.is_complete():
                continue
            novel = {
                s.cohort_id: self._novel_fraction(receiver, s)
                for s in receiver.senders
            }
            cohort_useful: Dict[str, float] = {}
            for tier in receiver.tiers:
                if tier.completed_at is not None:
                    continue
                remaining = receiver.definition.demand - tier.count
                offered = self.rate * tier.mult * window
                delivered = offered * (1.0 - self.loss_rate)
                useful_by_sender: Dict[str, float] = {}
                active = 0
                for s in receiver.senders:
                    if s.is_source:
                        useful_by_sender[s.cohort_id] = delivered
                        active += 1
                        continue
                    n_s = counts[s.cohort_id]
                    if n_s <= 0:
                        continue  # nothing to serve: no traffic at all
                    active += 1
                    pool = novel[s.cohort_id] * n_s
                    if self.informed_strategy:
                        # Reconcile-then-send: every delivered symbol is
                        # novel until the sender's novel pool runs dry.
                        useful_by_sender[s.cohort_id] = min(delivered, pool)
                    else:
                        # Blind Random sending: coupon-collector yield.
                        useful_by_sender[s.cohort_id] = pool * -math.expm1(
                            -delivered / n_s
                        )
                total_useful = sum(useful_by_sender.values())
                if total_useful > remaining > 0:
                    phi = remaining / total_useful
                    gained = remaining
                else:
                    phi = 1.0
                    gained = total_useful
                sent = offered * active * tier.members * phi
                self.packets_sent += sent
                self.packets_lost += sent * self.loss_rate
                self.packets_useful += gained * tier.members
                tier.count += gained
                if tier.count >= receiver.definition.demand - 1e-9:
                    tier.completed_at = t0 + phi * window
                for sid, u in useful_by_sender.items():
                    cohort_useful[sid] = cohort_useful.get(sid, 0.0) + u * (
                        tier.members / receiver.members
                    ) * phi
            if not cohort_useful:
                continue
            # Scale the cohort's mean per-member gain into sampled-ID
            # units; the fractional carry keeps long runs unbiased.
            grown = receiver.scale * sum(cohort_useful.values()) + receiver.carry
            draw = int(grown)
            receiver.carry = grown - draw
            if draw <= 0:
                continue
            senders = sorted(cohort_useful)
            shares = apportion(draw, [cohort_useful[s] for s in senders])
            for sid, k in zip(senders, shares):
                if k > 0:
                    rep_updates.append((receiver, self._by_node_id[sid], k))
        for receiver, sender, k in rep_updates:
            self._apply_rep_update(receiver, sender, k)

    def _apply_rep_update(self, receiver: _Cohort, sender: _Cohort, k: int) -> None:
        """Mirror the window's real gains into the sampled-ID sketch."""
        if sender.is_source:
            for _ in range(k):
                receiver.rep.receive_symbol(sender.rep.mint_fresh_id())
            return
        ours = set(receiver.rep.working_set.ids)
        pool = sorted(set(sender.rep.working_set.ids) - ours)
        if not pool:
            return
        for symbol in self.rng.sample(pool, min(k, len(pool))):
            receiver.rep.receive_symbol(symbol)

    # -- reporting ----------------------------------------------------------

    def _report(self, now: float, horizon: float) -> FlowReport:
        completions: List[Tuple[float, int]] = []
        completed = 0
        for c in self.cohorts:
            for t in c.tiers:
                if t.completed_at is not None:
                    completions.append((t.completed_at, t.members))
                    completed += t.members
        all_complete = all(c.is_complete() for c in self.cohorts)
        end = max((t for t, _ in completions), default=now) if all_complete else now
        return FlowReport(
            ticks=int(math.ceil(min(end, horizon))),
            all_complete=all_complete,
            population=self.population,
            peers_completed=completed,
            completions=sorted(completions),
            packets_sent=self.packets_sent,
            packets_lost=self.packets_lost,
            packets_useful=self.packets_useful,
            reconfigurations=self.reconfigurations,
            reconfig_epochs=self.reconfig_epochs,
            control_bytes=self.control_bytes,
            events=list(self.events),
        )


__all__ = [
    "CohortDef",
    "FlowReport",
    "FlowSimulator",
    "UNINFORMED_STRATEGIES",
]
