"""repro.flow — flow-level simulation for million-peer populations.

Bulk transfer advances as rate equations over cohort aggregates
(:class:`FlowSimulator`), while the reconciliation control plane stays
packet-real: every cohort representative carries a sampled-ID sketch
over which genuine :mod:`repro.reconcile` summaries are built at each
epoch handshake, driving the same
:class:`~repro.overlay.reconfiguration.SketchAdmission` /
:class:`~repro.overlay.reconfiguration.UtilityRewiring` policies the
packet engines use.  Selected through the spec layer as
``measurement.fidelity = "flow"`` on the population scenarios.

* :mod:`repro.flow.engine` — :class:`FlowSimulator`,
  :class:`CohortDef`, :class:`FlowReport`.
* :mod:`repro.flow.demand` — deterministic Zipf/wave/tier
  apportionment shared by both fidelities.
"""

from repro.flow.demand import (
    apportion,
    tier_multipliers,
    wave_weights,
    zipf_shares,
)
from repro.flow.engine import (
    UNINFORMED_STRATEGIES,
    CohortDef,
    FlowReport,
    FlowSimulator,
)

__all__ = [
    "CohortDef",
    "FlowReport",
    "FlowSimulator",
    "UNINFORMED_STRATEGIES",
    "apportion",
    "zipf_shares",
    "wave_weights",
    "tier_multipliers",
]
