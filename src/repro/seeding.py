"""Deterministic RNG derivation from one master seed.

Every random choice in a spec-driven experiment descends from the
spec's single ``seed`` through :func:`derive_rng`, so two runs of the
same :class:`~repro.api.ExperimentSpec` are bit-identical — across
processes and platforms (the derivation hashes with SHA-256, never
Python's randomised ``hash()``).

Components that historically defaulted to an OS-seeded
``random.Random()`` (sender strategies, demand splitting, protocol
sessions, the overlay simulator) now default to a stream derived from
:data:`DEFAULT_MASTER_SEED` and their own dotted path, so even
"unseeded" constructions replay exactly.
"""

import hashlib
import itertools
import random

#: Master seed used when a component is constructed without an explicit
#: RNG; keeps default construction deterministic instead of OS-seeded.
DEFAULT_MASTER_SEED = 0


def derive_seed(master: int, *path: object) -> int:
    """A stable 64-bit seed for the stream named by ``path``.

    ``path`` components may be any objects with a stable ``repr``
    (strings, ints, floats, tuples thereof).  Distinct paths give
    independent streams; the same ``(master, path)`` always gives the
    same seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(master)).encode("utf-8"))
    for part in path:
        digest.update(b"/")
        digest.update(repr(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(master: int, *path: object) -> random.Random:
    """A ``random.Random`` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(master, *path))


#: Salts :func:`default_rng` so every unseeded component gets its own
#: stream (unseeded senders must not transmit in lockstep) while a
#: fresh process — which constructs components in the same order —
#: still replays the same sequence of streams.
_instance_counter = itertools.count()


def default_rng(*path: object) -> random.Random:
    """The deterministic stand-in for a bare ``random.Random()`` default.

    Used by components whose constructors accept ``rng=None``: the
    stream is derived from :data:`DEFAULT_MASTER_SEED`, the component's
    dotted path, and a process-wide construction counter.  Distinct
    instances therefore draw independent streams (no accidental
    lockstep), yet two runs of the same program replay identically —
    unlike the OS-seeded ``random.Random()`` these defaults replace.
    """
    return derive_rng(DEFAULT_MASTER_SEED, *path, next(_instance_counter))


__all__ = ["DEFAULT_MASTER_SEED", "derive_seed", "derive_rng", "default_rng"]
