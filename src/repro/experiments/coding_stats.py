"""Section 6.1 coding-parameter reproduction.

The paper: "The degree distribution used had an average degree of 11 for
the encoded symbols and average decoding overhead of 6.8%."  This runner
measures both for our heavy-tail heuristic (and any other distribution)
at a configurable block count.
"""

import random
from dataclasses import dataclass
from typing import Optional

from repro.coding import DegreeDistribution, LTEncoder, PeelingDecoder


@dataclass
class CodingStats:
    """Measured code parameters for one configuration."""

    num_blocks: int
    average_degree: float
    decoding_overhead: float  # mean of (symbols needed / blocks) - 1
    overhead_std: float
    trials: int


def run_coding_stats(
    num_blocks: int = 2_000,
    trials: int = 5,
    distribution: Optional[DegreeDistribution] = None,
    seed: int = 3,
) -> CodingStats:
    """Measure average degree and decoding overhead empirically.

    Identity-only decoding (no payload XOR) — overhead is a property of
    the symbol/block bipartite graph, not of the payload bytes.
    """
    distribution = distribution or DegreeDistribution.heavy_tail_heuristic(num_blocks)
    overheads = []
    for t in range(trials):
        encoder = LTEncoder(
            num_blocks, distribution=distribution, stream_seed=seed + t
        )
        decoder = PeelingDecoder(num_blocks, track_payloads=False)
        used = 0
        for symbol in encoder.stream():
            decoder.add_symbol(symbol)
            used += 1
            if decoder.is_complete:
                break
            if used > 3 * num_blocks:  # pathological distribution guard
                break
        overheads.append(used / num_blocks - 1.0)
    mean = sum(overheads) / len(overheads)
    var = sum((o - mean) ** 2 for o in overheads) / len(overheads)
    return CodingStats(
        num_blocks=num_blocks,
        average_degree=distribution.mean(),
        decoding_overhead=mean,
        overhead_std=var ** 0.5,
        trials=trials,
    )
