"""Experiment runners regenerating every table and figure in the paper.

Each runner returns plain dataclasses with the same rows/series the paper
reports; benchmarks time them and examples print them.  The experiment id
to paper mapping lives in DESIGN.md's experiment index.

* :mod:`repro.experiments.fig4` — ART accuracy (Figure 4a, 4b, 4c).
* :mod:`repro.experiments.fig5678` — delivery simulations (Figures 5-8).
* :mod:`repro.experiments.coding_stats` — Section 6.1 code parameters.
* :mod:`repro.experiments.sketch_accuracy` — Section 4 sketch quality.
"""

from repro.experiments.fig4 import (
    ARTAccuracyPoint,
    run_fig4a,
    run_fig4b,
    run_fig4c,
)
from repro.experiments.fig5678 import (
    DeliveryPoint,
    fig5_campaigns,
    fig5_spec,
    fig6_campaigns,
    fig6_spec,
    fig78_campaigns,
    fig78_spec,
    run_fig5,
    run_fig6,
    run_fig78,
)
from repro.experiments.coding_stats import CodingStats, run_coding_stats
from repro.experiments.sketch_accuracy import SketchAccuracy, run_sketch_accuracy

__all__ = [
    "ARTAccuracyPoint",
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
    "DeliveryPoint",
    "fig5_campaigns",
    "fig5_spec",
    "fig6_campaigns",
    "fig6_spec",
    "fig78_campaigns",
    "fig78_spec",
    "run_fig5",
    "run_fig6",
    "run_fig78",
    "CodingStats",
    "run_coding_stats",
    "SketchAccuracy",
    "run_sketch_accuracy",
]
