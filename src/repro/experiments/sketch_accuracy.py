"""Section 4 reproduction: sketch accuracy within a 1KB calling card.

The paper claims a single 1KB packet (128 x 64-bit minima, or ~128
sampled keys) gives "sufficiently accurate estimates" of working-set
similarity.  This runner measures RMSE of the three estimators against
ground truth across resemblance levels.
"""

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.delivery.working_set import DEFAULT_KEY_UNIVERSE, WorkingSet
from repro.hashing.permutations import PermutationFamily
from repro.sketches import (
    MinwiseSketch,
    ModKSketch,
    RandomSampleSketch,
    containment_from_resemblance,
)


@dataclass
class SketchAccuracy:
    """RMSE of containment estimates for one sketch technique."""

    technique: str
    packet_bytes: int
    rmse: float
    bias: float
    samples: int


def _make_pair(set_size: int, containment: float, rng: random.Random):
    """(A, B) with |A ∩ B| / |B| ≈ containment, |A| = |B| = set_size."""
    overlap = int(round(containment * set_size))
    pool = rng.sample(range(DEFAULT_KEY_UNIVERSE), 2 * set_size - overlap)
    b = pool[:set_size]
    a = pool[set_size - overlap :]
    return WorkingSet(a), WorkingSet(b)


def run_sketch_accuracy(
    set_size: int = 5_000,
    containments: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    sketch_entries: int = 128,
    trials: int = 5,
    seed: int = 21,
) -> List[SketchAccuracy]:
    """Measure estimate error for minwise / random-sample / mod-k sketches.

    All techniques are granted the same ~1KB budget: 128 minima, 128
    sampled keys, or an expected-128-element mod-k sample.
    """
    rng = random.Random(seed)
    family = PermutationFamily(sketch_entries, DEFAULT_KEY_UNIVERSE, seed=seed)
    errors: Dict[str, List[float]] = {"minwise": [], "random-sample": [], "mod-k": []}
    for containment in containments:
        for _ in range(trials):
            a, b = _make_pair(set_size, containment, rng)
            truth = len(a.ids & b.ids) / len(b)

            sk_a = MinwiseSketch.build(a.ids, family)
            sk_b = MinwiseSketch.build(b.ids, family)
            r = sk_a.estimate_resemblance(sk_b)
            est = containment_from_resemblance(r, len(a), len(b))
            errors["minwise"].append(est - truth)

            # Random sample: B samples, A reports the hit fraction
            # |B_k ∩ A| / k — an unbiased estimate of |A ∩ B| / |B|.
            sample_b = RandomSampleSketch.build(b.ids, sketch_entries, rng)
            errors["random-sample"].append(
                sample_b.estimate_containment_in(a.ids) - truth
            )

            modulus = max(1, set_size // sketch_entries)
            mk_a = ModKSketch.build(a.ids, modulus, seed)
            mk_b = ModKSketch.build(b.ids, modulus, seed)
            if len(mk_b):
                errors["mod-k"].append(mk_a.estimate_containment(mk_b) - truth)
    out = []
    for name, errs in errors.items():
        rmse = math.sqrt(sum(e * e for e in errs) / len(errs))
        bias = sum(errs) / len(errs)
        out.append(
            SketchAccuracy(
                technique=name,
                packet_bytes=8 * sketch_entries,
                rmse=rmse,
                bias=bias,
                samples=len(errs),
            )
        )
    return out
