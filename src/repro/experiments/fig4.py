"""Figure 4 reproductions: approximate reconciliation tree accuracy.

The paper's setup (Section 5.3 / Figure 4): peer B holds a set with ``d``
elements peer A lacks; accuracy is the fraction of those differences B's
search finds using A's ART summary.  Figure 4(a) sweeps the leaf/internal
bit split at 8 total bits per element for correction levels 0-5;
Figure 4(b) tabulates accuracy for 2/4/6/8 bits per element under the
*optimal* split; Figure 4(c) compares the Bloom filter and the ART at 8
bits per element on size, accuracy, and search cost.
"""

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.art import ApproximateReconciliationTree
from repro.filters import BloomFilter

#: Figure 4 experiment scale: sets of 10,000 elements differing in ~100 —
#: the "less than 1% of symbols useful" regime ARTs were designed for.
DEFAULT_SET_SIZE = 10_000
DEFAULT_DIFFERENCES = 100
CORRECTION_LEVELS = (0, 1, 2, 3, 4, 5)


@dataclass
class ARTAccuracyPoint:
    """One measured cell of Figure 4."""

    bits_per_element: int
    leaf_bits: float
    correction: int
    accuracy: float
    nodes_visited: float
    summary_bytes: int


def _make_sets(
    set_size: int, differences: int, rng: random.Random
) -> Tuple[List[int], List[int]]:
    """A/B sets where B holds ``differences`` elements A lacks."""
    universe = 1 << 40
    common = rng.sample(range(universe), set_size)
    extra = []
    seen = set(common)
    while len(extra) < differences:
        x = rng.randrange(universe)
        if x not in seen:
            seen.add(x)
            extra.append(x)
    set_a = common
    set_b = common[differences:] + extra  # same size, d differences each way
    return set_a, set_b


def _accuracy_for(
    set_a: Sequence[int],
    set_b: Sequence[int],
    bits_per_element: int,
    leaf_bits: float,
    correction: int,
    seed: int,
) -> Tuple[float, int, int]:
    """(accuracy, nodes visited, summary bytes) for one configuration."""
    art_a = ApproximateReconciliationTree(
        set_a, bits_per_element=bits_per_element,
        leaf_bits_per_element=leaf_bits, seed=seed,
    )
    art_b = ApproximateReconciliationTree(
        set_b, bits_per_element=bits_per_element,
        leaf_bits_per_element=leaf_bits, seed=seed,
    )
    summary = art_a.summary()
    stats = art_b.difference_against(summary, correction=correction)
    true_diff = set(set_b) - set(set_a)
    found = set(stats.differences) & true_diff
    accuracy = len(found) / len(true_diff) if true_diff else 1.0
    return accuracy, stats.nodes_visited, summary.size_bytes()


def run_fig4a(
    set_size: int = DEFAULT_SET_SIZE,
    differences: int = DEFAULT_DIFFERENCES,
    total_bits: int = 8,
    leaf_bit_choices: Sequence[float] = (1, 2, 3, 4, 5, 6, 7),
    corrections: Sequence[int] = CORRECTION_LEVELS,
    trials: int = 3,
    seed: int = 42,
) -> List[ARTAccuracyPoint]:
    """Figure 4(a): accuracy vs leaf-filter bits at fixed total budget."""
    rng = random.Random(seed)
    points: List[ARTAccuracyPoint] = []
    for leaf_bits in leaf_bit_choices:
        for correction in corrections:
            accs, visits, size = [], [], 0
            for t in range(trials):
                set_a, set_b = _make_sets(set_size, differences, rng)
                acc, nv, size = _accuracy_for(
                    set_a, set_b, total_bits, leaf_bits, correction, seed + t
                )
                accs.append(acc)
                visits.append(nv)
            points.append(
                ARTAccuracyPoint(
                    bits_per_element=total_bits,
                    leaf_bits=leaf_bits,
                    correction=correction,
                    accuracy=sum(accs) / len(accs),
                    nodes_visited=sum(visits) / len(visits),
                    summary_bytes=size,
                )
            )
    return points


def best_leaf_split(points: Sequence[ARTAccuracyPoint], correction: int) -> float:
    """The leaf-bit choice maximising accuracy at a correction level."""
    candidates = [p for p in points if p.correction == correction]
    if not candidates:
        raise ValueError(f"no points at correction {correction}")
    return max(candidates, key=lambda p: p.accuracy).leaf_bits


def run_fig4b(
    set_size: int = DEFAULT_SET_SIZE,
    differences: int = DEFAULT_DIFFERENCES,
    bits_choices: Sequence[int] = (2, 4, 6, 8),
    corrections: Sequence[int] = CORRECTION_LEVELS,
    trials: int = 3,
    seed: int = 42,
) -> Dict[Tuple[int, int], float]:
    """Figure 4(b): accuracy table, (correction, bits/element) -> accuracy.

    For each bits/element column the leaf/internal split is chosen per
    correction level by a small sweep — "the optimal distribution of bits
    between leaves and interior nodes".
    """
    rng = random.Random(seed)
    table: Dict[Tuple[int, int], float] = {}
    for bits in bits_choices:
        splits = [bits * f for f in (0.25, 0.5, 0.75)]
        for correction in corrections:
            best = 0.0
            for leaf_bits in splits:
                accs = []
                for t in range(trials):
                    set_a, set_b = _make_sets(set_size, differences, rng)
                    acc, _, _ = _accuracy_for(
                        set_a, set_b, bits, leaf_bits, correction, seed + t
                    )
                    accs.append(acc)
                best = max(best, sum(accs) / len(accs))
            table[(correction, bits)] = best
    return table


@dataclass
class StructureComparison:
    """One row of Figure 4(c)."""

    name: str
    size_bits_per_element: float
    accuracy: float
    search_seconds: float
    asymptotic: str


def run_fig4c(
    set_size: int = DEFAULT_SET_SIZE,
    differences: int = DEFAULT_DIFFERENCES,
    bits_per_element: int = 8,
    correction: int = 5,
    trials: int = 3,
    seed: int = 42,
) -> List[StructureComparison]:
    """Figure 4(c): Bloom filter vs ART at 8 bits per element."""
    rng = random.Random(seed)
    bf_acc, bf_time = [], []
    art_acc, art_time = [], []
    for t in range(trials):
        set_a, set_b = _make_sets(set_size, differences, rng)
        true_diff = set(set_b) - set(set_a)

        bf = BloomFilter.for_elements(set_a, bits_per_element=bits_per_element)
        start = time.perf_counter()
        found = [x for x in set_b if x not in bf]
        bf_time.append(time.perf_counter() - start)
        bf_acc.append(len(set(found) & true_diff) / len(true_diff))

        art_a = ApproximateReconciliationTree(
            set_a, bits_per_element=bits_per_element, seed=seed + t
        )
        art_b = ApproximateReconciliationTree(
            set_b, bits_per_element=bits_per_element, seed=seed + t
        )
        summary = art_a.summary()
        start = time.perf_counter()
        stats = art_b.difference_against(summary, correction=correction)
        art_time.append(time.perf_counter() - start)
        art_acc.append(len(set(stats.differences) & true_diff) / len(true_diff))
    return [
        StructureComparison(
            name="Bloom filter",
            size_bits_per_element=bits_per_element,
            accuracy=sum(bf_acc) / trials,
            search_seconds=sum(bf_time) / trials,
            asymptotic="O(n)",
        ),
        StructureComparison(
            name=f"A.R.T. (correction={correction})",
            size_bits_per_element=bits_per_element,
            accuracy=sum(art_acc) / trials,
            search_seconds=sum(art_time) / trials,
            asymptotic="O(d log n)",
        ),
    ]
