"""Figure 5-8 reproductions: delivery-strategy simulations.

Every figure point is now one :class:`~repro.api.ExperimentSpec` run
through :func:`repro.api.run` — the same declarative pipeline the
scenario catalogs and the CLI use.  A point's spec can be recovered
with :func:`fig5_spec` / :func:`fig6_spec` / :func:`fig78_spec`,
serialised with ``spec.to_json()``, and replayed bit-identically
anywhere (per-trial seeds derive from the sweep seed via
:func:`repro.seeding.derive_seed`, never Python's randomised
``hash()``).

Shared conventions (Section 6.3):

* Correlation is ``|A ∩ B| / |B|`` (receiver A, sender B).
* "Compact" systems hold 1.1n distinct symbols, "stretched" 1.5n.
* All senders transmit at equal unit rates.
* The receiver asks each sender for its share of the deficit plus a
  margin covering decoding overhead (Section 6.1: "the receiver may
  specify the number of symbols desired from each sender with
  appropriate allowances for decoding overhead").
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.api import ExperimentSpec, run, specs
from repro.api.builders import DEFAULT_DESIRED_MARGIN
from repro.delivery import STRATEGY_NAMES
from repro.delivery.scenarios import (
    COMPACT_MULTIPLIER,
    STRETCHED_MULTIPLIER,
    max_pair_correlation,
)
from repro.seeding import derive_seed

#: Receiver's request margin over an even deficit split (decoding
#: overhead allowance plus slack for sender-domain overlap) — the one
#: constant the spec constructors also default to.
DESIRED_MARGIN = DEFAULT_DESIRED_MARGIN

#: Default experiment scale.  The paper simulates ~24k-block files; the
#: overhead/speedup ratios are scale-free above ~1k symbols, so the
#: default keeps the whole suite fast.  Benchmarks can raise it.
DEFAULT_TARGET = 1_000
DEFAULT_TRIALS = 3


@dataclass
class DeliveryPoint:
    """One (strategy, correlation) sample of a delivery figure."""

    figure: str
    scenario: str  # "compact" or "stretched"
    strategy: str
    correlation: float
    value: float  # overhead (fig 5), speedup (fig 6), relative rate (7/8)
    completed_fraction: float


def _correlations(multiplier: float, count: int) -> List[float]:
    """Evenly spaced achievable correlations for a pair scenario."""
    cap = max_pair_correlation(multiplier) * 0.95
    return [cap * i / (count - 1) for i in range(count)]


def _scenario_name(multiplier: float) -> str:
    return "compact" if multiplier <= 1.2 else "stretched"


def fig5_spec(
    target: int, multiplier: float, correlation: float, strategy: str, seed: int
) -> ExperimentSpec:
    """The spec behind one Figure 5 point (overhead, single sender)."""
    return specs.pair_transfer(
        target=target,
        multiplier=multiplier,
        correlation=correlation,
        strategy_name=strategy,
        seed=seed,
    )


def fig6_spec(
    target: int, multiplier: float, correlation: float, strategy: str, seed: int
) -> ExperimentSpec:
    """The spec behind one Figure 6 point (partial + full sender)."""
    return specs.pair_transfer(
        target=target,
        multiplier=multiplier,
        correlation=correlation,
        strategy_name=strategy,
        seed=seed,
        full_senders=1,
        desired_margin=DESIRED_MARGIN,
    )


def fig78_spec(
    target: int,
    multiplier: float,
    correlation: float,
    strategy: str,
    num_senders: int,
    seed: int,
) -> ExperimentSpec:
    """The spec behind one Figure 7/8 point (parallel partial senders)."""
    return specs.multi_sender_transfer(
        target=target,
        multiplier=multiplier,
        correlation=correlation,
        num_senders=num_senders,
        strategy_name=strategy,
        seed=seed,
        desired_margin=DESIRED_MARGIN,
    )


def _sweep_point(
    figure: str,
    multiplier: float,
    correlation: float,
    strategy: str,
    trials: int,
    metric: str,
    make_spec,
) -> DeliveryPoint:
    """Average one figure point's metric over seeded spec runs."""
    values, completed = [], 0
    for t in range(trials):
        result = run(make_spec(t))
        if result.completed:
            completed += 1
            values.append(result.metrics[metric])
    return DeliveryPoint(
        figure=figure,
        scenario=_scenario_name(multiplier),
        strategy=strategy,
        correlation=correlation,
        value=sum(values) / len(values) if values else math.nan,
        completed_fraction=completed / trials,
    )


def run_fig5(
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 7,
) -> List[DeliveryPoint]:
    """Figure 5: overhead of peer-to-peer transfers vs correlation."""
    points: List[DeliveryPoint] = []
    for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER):
        for corr in _correlations(multiplier, correlation_points):
            for name in strategies:
                points.append(
                    _sweep_point(
                        "5", multiplier, corr, name, trials, "overhead",
                        lambda t, m=multiplier, c=corr, n=name: fig5_spec(
                            target, m, c, n,
                            derive_seed(seed, "fig5", m, c, n, t),
                        ),
                    )
                )
    return points


def run_fig6(
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 11,
) -> List[DeliveryPoint]:
    """Figure 6: speedup of full + partial sender over full sender alone."""
    points: List[DeliveryPoint] = []
    for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER):
        for corr in _correlations(multiplier, correlation_points):
            for name in strategies:
                points.append(
                    _sweep_point(
                        "6", multiplier, corr, name, trials, "speedup",
                        lambda t, m=multiplier, c=corr, n=name: fig6_spec(
                            target, m, c, n,
                            derive_seed(seed, "fig6", m, c, n, t),
                        ),
                    )
                )
    return points


def run_fig78(
    num_senders: int,
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    max_correlation: float = 0.5,
    seed: int = 13,
) -> List[DeliveryPoint]:
    """Figures 7 (2 senders) and 8 (4 senders): parallel partial senders.

    Relative rate is measured against a single full sender (one useful
    symbol per round).
    """
    if num_senders < 1:
        raise ValueError("need at least one sender")
    figure = "7" if num_senders == 2 else "8" if num_senders == 4 else f"7/8({num_senders})"
    points: List[DeliveryPoint] = []
    for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER):
        corrs = [max_correlation * i / (correlation_points - 1)
                 for i in range(correlation_points)]
        for corr in corrs:
            for name in strategies:
                points.append(
                    _sweep_point(
                        figure, multiplier, corr, name, trials, "speedup",
                        lambda t, m=multiplier, c=corr, n=name: fig78_spec(
                            target, m, c, n, num_senders,
                            derive_seed(seed, "fig78", num_senders, m, c, n, t),
                        ),
                    )
                )
    return points


def series_by_strategy(
    points: Sequence[DeliveryPoint], scenario: str
) -> Dict[str, List[DeliveryPoint]]:
    """Group figure points into per-strategy series for one scenario."""
    out: Dict[str, List[DeliveryPoint]] = {}
    for p in points:
        if p.scenario == scenario:
            out.setdefault(p.strategy, []).append(p)
    for series in out.values():
        series.sort(key=lambda p: p.correlation)
    return out
