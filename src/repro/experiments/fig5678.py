"""Figure 5-8 reproductions: delivery-strategy simulations.

Every figure is now one :class:`~repro.campaign.CampaignSpec` grid
(correlation x strategy, replicated over trial seeds) run through the
parallel campaign engine — the same pipeline the CLI's ``--campaign``
flag drives.  ``run_fig5(workers=4)`` fans the sweep out over worker
processes; a figure's campaign can be recovered with
:func:`fig5_campaigns` / :func:`fig6_campaigns` /
:func:`fig78_campaigns`, serialised with ``campaign.to_json()``, and
replayed bit-identically anywhere (per-cell seeds derive from the
sweep seed via :func:`repro.seeding.derive_seed`, never Python's
randomised ``hash()``).  Single points remain constructible with
:func:`fig5_spec` / :func:`fig6_spec` / :func:`fig78_spec`.

Shared conventions (Section 6.3):

* Correlation is ``|A ∩ B| / |B|`` (receiver A, sender B).
* "Compact" systems hold 1.1n distinct symbols, "stretched" 1.5n.
* All senders transmit at equal unit rates.
* The receiver asks each sender for its share of the deficit plus a
  margin covering decoding overhead (Section 6.1: "the receiver may
  specify the number of symbols desired from each sender with
  appropriate allowances for decoding overhead").
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.api import ExperimentSpec, specs
from repro.api.builders import DEFAULT_DESIRED_MARGIN
from repro.campaign import CampaignSpec, GridAxis, run_campaign
from repro.delivery import STRATEGY_NAMES
from repro.delivery.scenarios import (
    COMPACT_MULTIPLIER,
    STRETCHED_MULTIPLIER,
    max_pair_correlation,
)

#: Receiver's request margin over an even deficit split (decoding
#: overhead allowance plus slack for sender-domain overlap) — the one
#: constant the spec constructors also default to.
DESIRED_MARGIN = DEFAULT_DESIRED_MARGIN

#: Default experiment scale.  The paper simulates ~24k-block files; the
#: overhead/speedup ratios are scale-free above ~1k symbols, so the
#: default keeps the whole suite fast.  Benchmarks can raise it.
DEFAULT_TARGET = 1_000
DEFAULT_TRIALS = 3


@dataclass
class DeliveryPoint:
    """One (strategy, correlation) sample of a delivery figure."""

    figure: str
    scenario: str  # "compact" or "stretched"
    strategy: str
    correlation: float
    value: float  # overhead (fig 5), speedup (fig 6), relative rate (7/8)
    completed_fraction: float


def _correlations(multiplier: float, count: int) -> List[float]:
    """Evenly spaced achievable correlations for a pair scenario."""
    cap = max_pair_correlation(multiplier) * 0.95
    return [cap * i / (count - 1) for i in range(count)]


def _scenario_name(multiplier: float) -> str:
    return "compact" if multiplier <= 1.2 else "stretched"


def fig5_spec(
    target: int, multiplier: float, correlation: float, strategy: str, seed: int
) -> ExperimentSpec:
    """The spec behind one Figure 5 point (overhead, single sender)."""
    return specs.pair_transfer(
        target=target,
        multiplier=multiplier,
        correlation=correlation,
        strategy_name=strategy,
        seed=seed,
    )


def fig6_spec(
    target: int, multiplier: float, correlation: float, strategy: str, seed: int
) -> ExperimentSpec:
    """The spec behind one Figure 6 point (partial + full sender)."""
    return specs.pair_transfer(
        target=target,
        multiplier=multiplier,
        correlation=correlation,
        strategy_name=strategy,
        seed=seed,
        full_senders=1,
        desired_margin=DESIRED_MARGIN,
    )


def fig78_spec(
    target: int,
    multiplier: float,
    correlation: float,
    strategy: str,
    num_senders: int,
    seed: int,
) -> ExperimentSpec:
    """The spec behind one Figure 7/8 point (parallel partial senders)."""
    return specs.multi_sender_transfer(
        target=target,
        multiplier=multiplier,
        correlation=correlation,
        num_senders=num_senders,
        strategy_name=strategy,
        seed=seed,
        desired_margin=DESIRED_MARGIN,
    )


#: The grid axes every delivery figure sweeps (x-axis and legend).
_CORR_AXIS = "params.correlation"
_STRATEGY_AXIS = "strategy.name"


def _figure_campaign(
    name: str,
    base: ExperimentSpec,
    correlations: Sequence[float],
    strategies: Sequence[str],
    trials: int,
) -> CampaignSpec:
    """One figure panel as a campaign: correlation x strategy x trials."""
    return CampaignSpec(
        base=base,
        grid=(
            GridAxis(_CORR_AXIS, tuple(correlations)),
            GridAxis(_STRATEGY_AXIS, tuple(strategies)),
        ),
        seeds=trials,
        name=name,
    )


def _campaign_points(
    figure: str, multiplier: float, campaign: CampaignSpec, metric: str, workers: int
) -> List[DeliveryPoint]:
    """Run one panel's campaign and fold its cells into figure points."""
    result = run_campaign(campaign, workers=workers)
    points: List[DeliveryPoint] = []
    groups = result.cell_groups(_CORR_AXIS, _STRATEGY_AXIS)
    for corr in campaign.axis(_CORR_AXIS).values:
        for name in campaign.axis(_STRATEGY_AXIS).values:
            cells = groups[(corr, name)]
            value = result.mean_metric(cells, metric)
            points.append(
                DeliveryPoint(
                    figure=figure,
                    scenario=_scenario_name(multiplier),
                    strategy=name,
                    correlation=corr,
                    value=value if value is not None else math.nan,
                    completed_fraction=sum(c.completed for c in cells) / len(cells),
                )
            )
    return points


def fig5_campaigns(
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 7,
) -> Dict[float, CampaignSpec]:
    """Figure 5's two panels (by distinct-multiplier) as campaign grids."""
    return {
        multiplier: _figure_campaign(
            f"fig5-{_scenario_name(multiplier)}",
            specs.pair_transfer(target=target, multiplier=multiplier, seed=seed),
            _correlations(multiplier, correlation_points),
            strategies,
            trials,
        )
        for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER)
    }


def fig6_campaigns(
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 11,
) -> Dict[float, CampaignSpec]:
    """Figure 6's two panels as campaign grids."""
    return {
        multiplier: _figure_campaign(
            f"fig6-{_scenario_name(multiplier)}",
            specs.pair_transfer(
                target=target,
                multiplier=multiplier,
                seed=seed,
                full_senders=1,
                desired_margin=DESIRED_MARGIN,
            ),
            _correlations(multiplier, correlation_points),
            strategies,
            trials,
        )
        for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER)
    }


def fig78_campaigns(
    num_senders: int,
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    max_correlation: float = 0.5,
    seed: int = 13,
) -> Dict[float, CampaignSpec]:
    """Figure 7/8's two panels (``num_senders`` partial senders) as grids."""
    if num_senders < 1:
        raise ValueError("need at least one sender")
    corrs = [
        max_correlation * i / (correlation_points - 1)
        for i in range(correlation_points)
    ]
    return {
        multiplier: _figure_campaign(
            f"fig78-{num_senders}s-{_scenario_name(multiplier)}",
            specs.multi_sender_transfer(
                target=target,
                multiplier=multiplier,
                num_senders=num_senders,
                seed=seed,
                desired_margin=DESIRED_MARGIN,
            ),
            corrs,
            strategies,
            trials,
        )
        for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER)
    }


def run_fig5(
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 7,
    workers: int = 1,
) -> List[DeliveryPoint]:
    """Figure 5: overhead of peer-to-peer transfers vs correlation."""
    points: List[DeliveryPoint] = []
    campaigns = fig5_campaigns(target, trials, correlation_points, strategies, seed)
    for multiplier, campaign in campaigns.items():
        points += _campaign_points("5", multiplier, campaign, "overhead", workers)
    return points


def run_fig6(
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 11,
    workers: int = 1,
) -> List[DeliveryPoint]:
    """Figure 6: speedup of full + partial sender over full sender alone."""
    points: List[DeliveryPoint] = []
    campaigns = fig6_campaigns(target, trials, correlation_points, strategies, seed)
    for multiplier, campaign in campaigns.items():
        points += _campaign_points("6", multiplier, campaign, "speedup", workers)
    return points


def run_fig78(
    num_senders: int,
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    max_correlation: float = 0.5,
    seed: int = 13,
    workers: int = 1,
) -> List[DeliveryPoint]:
    """Figures 7 (2 senders) and 8 (4 senders): parallel partial senders.

    Relative rate is measured against a single full sender (one useful
    symbol per round).
    """
    figure = "7" if num_senders == 2 else "8" if num_senders == 4 else f"7/8({num_senders})"
    points: List[DeliveryPoint] = []
    campaigns = fig78_campaigns(
        num_senders, target, trials, correlation_points, strategies,
        max_correlation, seed,
    )
    for multiplier, campaign in campaigns.items():
        points += _campaign_points(figure, multiplier, campaign, "speedup", workers)
    return points


def series_by_strategy(
    points: Sequence[DeliveryPoint], scenario: str
) -> Dict[str, List[DeliveryPoint]]:
    """Group figure points into per-strategy series for one scenario."""
    out: Dict[str, List[DeliveryPoint]] = {}
    for p in points:
        if p.scenario == scenario:
            out.setdefault(p.strategy, []).append(p)
    for series in out.values():
        series.sort(key=lambda p: p.correlation)
    return out
