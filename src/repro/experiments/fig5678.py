"""Figure 5-8 reproductions: delivery-strategy simulations.

Shared conventions (Section 6.3):

* Correlation is ``|A ∩ B| / |B|`` (receiver A, sender B).
* "Compact" systems hold 1.1n distinct symbols, "stretched" 1.5n.
* All senders transmit at equal unit rates.
* The receiver asks each sender for its share of the deficit plus a
  margin covering decoding overhead (Section 6.1: "the receiver may
  specify the number of symbols desired from each sender with
  appropriate allowances for decoding overhead").
"""

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.delivery import (
    STRATEGY_NAMES,
    SimReceiver,
    make_multi_sender_scenario,
    make_pair_scenario,
    make_strategy,
    simulate_multi_sender_transfer,
    simulate_p2p_transfer,
)
from repro.delivery.scenarios import (
    COMPACT_MULTIPLIER,
    STRETCHED_MULTIPLIER,
    max_pair_correlation,
)

#: Receiver's request margin over an even deficit split (decoding
#: overhead allowance plus slack for sender-domain overlap).
DESIRED_MARGIN = 1.15

#: Default experiment scale.  The paper simulates ~24k-block files; the
#: overhead/speedup ratios are scale-free above ~1k symbols, so the
#: default keeps the whole suite fast.  Benchmarks can raise it.
DEFAULT_TARGET = 1_000
DEFAULT_TRIALS = 3


@dataclass
class DeliveryPoint:
    """One (strategy, correlation) sample of a delivery figure."""

    figure: str
    scenario: str  # "compact" or "stretched"
    strategy: str
    correlation: float
    value: float  # overhead (fig 5), speedup (fig 6), relative rate (7/8)
    completed_fraction: float


def _correlations(multiplier: float, count: int) -> List[float]:
    """Evenly spaced achievable correlations for a pair scenario."""
    cap = max_pair_correlation(multiplier) * 0.95
    return [cap * i / (count - 1) for i in range(count)]


def _scenario_name(multiplier: float) -> str:
    return "compact" if multiplier <= 1.2 else "stretched"


def run_fig5(
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 7,
) -> List[DeliveryPoint]:
    """Figure 5: overhead of peer-to-peer transfers vs correlation."""
    points: List[DeliveryPoint] = []
    for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER):
        for corr in _correlations(multiplier, correlation_points):
            for name in strategies:
                values, completed = [], 0
                for t in range(trials):
                    rng = random.Random(seed + 1000 * t + hash((multiplier, corr, name)) % 997)
                    sc = make_pair_scenario(target, multiplier, corr, rng)
                    recv = SimReceiver(sc.receiver.ids, sc.target)
                    strat = make_strategy(
                        name, sc.sender, sc.receiver, rng,
                        symbols_desired=sc.target - len(sc.receiver),
                    )
                    res = simulate_p2p_transfer(recv, strat)
                    if res.completed:
                        completed += 1
                        values.append(res.overhead)
                points.append(
                    DeliveryPoint(
                        figure="5",
                        scenario=_scenario_name(multiplier),
                        strategy=name,
                        correlation=corr,
                        value=sum(values) / len(values) if values else math.nan,
                        completed_fraction=completed / trials,
                    )
                )
    return points


def run_fig6(
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 11,
) -> List[DeliveryPoint]:
    """Figure 6: speedup of full + partial sender over full sender alone."""
    points: List[DeliveryPoint] = []
    for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER):
        for corr in _correlations(multiplier, correlation_points):
            for name in strategies:
                values, completed = [], 0
                for t in range(trials):
                    rng = random.Random(seed + 1000 * t + hash((multiplier, corr, name)) % 997)
                    sc = make_pair_scenario(target, multiplier, corr, rng)
                    recv = SimReceiver(sc.receiver.ids, sc.target)
                    deficit = sc.target - len(sc.receiver)
                    # Two equal-rate senders: ask each for half the deficit.
                    desired = int(math.ceil(deficit / 2 * DESIRED_MARGIN))
                    strat = make_strategy(
                        name, sc.sender, sc.receiver, rng,
                        symbols_desired=desired,
                    )
                    res = simulate_multi_sender_transfer(
                        recv, [strat], full_senders=1
                    )
                    if res.completed:
                        completed += 1
                        values.append(res.speedup)
                points.append(
                    DeliveryPoint(
                        figure="6",
                        scenario=_scenario_name(multiplier),
                        strategy=name,
                        correlation=corr,
                        value=sum(values) / len(values) if values else math.nan,
                        completed_fraction=completed / trials,
                    )
                )
    return points


def run_fig78(
    num_senders: int,
    target: int = DEFAULT_TARGET,
    trials: int = DEFAULT_TRIALS,
    correlation_points: int = 6,
    strategies: Sequence[str] = STRATEGY_NAMES,
    max_correlation: float = 0.5,
    seed: int = 13,
) -> List[DeliveryPoint]:
    """Figures 7 (2 senders) and 8 (4 senders): parallel partial senders.

    Relative rate is measured against a single full sender (one useful
    symbol per round).
    """
    if num_senders < 1:
        raise ValueError("need at least one sender")
    figure = "7" if num_senders == 2 else "8" if num_senders == 4 else f"7/8({num_senders})"
    points: List[DeliveryPoint] = []
    for multiplier in (COMPACT_MULTIPLIER, STRETCHED_MULTIPLIER):
        corrs = [max_correlation * i / (correlation_points - 1)
                 for i in range(correlation_points)]
        for corr in corrs:
            for name in strategies:
                values, completed = [], 0
                for t in range(trials):
                    rng = random.Random(seed + 1000 * t + hash((multiplier, corr, name)) % 997)
                    sc = make_multi_sender_scenario(
                        target, multiplier, corr, num_senders, rng
                    )
                    recv = SimReceiver(sc.receiver.ids, sc.target)
                    deficit = sc.target - len(sc.receiver)
                    desired = int(math.ceil(deficit / num_senders * DESIRED_MARGIN))
                    strats = [
                        make_strategy(
                            name, s, sc.receiver, rng, symbols_desired=desired
                        )
                        for s in sc.senders
                    ]
                    res = simulate_multi_sender_transfer(recv, strats)
                    if res.completed:
                        completed += 1
                        values.append(res.speedup)
                points.append(
                    DeliveryPoint(
                        figure=figure,
                        scenario=_scenario_name(multiplier),
                        strategy=name,
                        correlation=corr,
                        value=sum(values) / len(values) if values else math.nan,
                        completed_fraction=completed / trials,
                    )
                )
    return points


def series_by_strategy(
    points: Sequence[DeliveryPoint], scenario: str
) -> Dict[str, List[DeliveryPoint]]:
    """Group figure points into per-strategy series for one scenario."""
    out: Dict[str, List[DeliveryPoint]] = {}
    for p in points:
        if p.scenario == scenario:
            out.setdefault(p.strategy, []).append(p)
    for series in out.values():
        series.sort(key=lambda p: p.correlation)
    return out
