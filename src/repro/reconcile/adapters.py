"""Registered :class:`~repro.reconcile.base.Summary` adapters.

One adapter per structure in the library, spanning the paper's whole
cost/precision spectrum:

========================  ==========  ===========================================
kind                      section     underlying structure
========================  ==========  ===========================================
``minwise``               §4          :class:`repro.sketches.MinwiseSketch`
``modk``                  §4          :class:`repro.sketches.ModKSketch`
``random_sample``         §4          :class:`repro.sketches.RandomSampleSketch`
``bloom``                 §5.2        :class:`repro.filters.BloomFilter`
``counting_bloom``        §5.2 [11]   :class:`repro.filters.CountingBloomFilter`
``partitioned_bloom``     §5.2        :class:`repro.filters.PartitionedBloomFilter`
``art``                   §5.3        :class:`repro.art.ApproximateReconciliationTree`
``cpi``                   §5.1 [19]   :class:`repro.exact.CharacteristicPolynomialReconciler`
``hashset``               §5.1        :class:`repro.exact.HashSetSummary`
``wholeset``              §5.1        explicit key transfer
========================  ==========  ===========================================

Builds go through the vectorised kernels in :mod:`repro.hashing.batch`
wherever one exists, so sweeping summary kinds over large working sets
stays benchmarkable.  Wire sizes follow one convention: a 4-byte
set-size header plus the structure's own bytes plus its parameter
headers — matching the byte accounting the protocol messages report.
"""

import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

from functools import lru_cache

from repro.art import ApproximateReconciliationTree, ARTSummary, find_difference
from repro.art.tree import ReconciliationTrie, value_hash
from repro.exact.cpi import CharacteristicPolynomialReconciler, CPISketch
from repro.exact.hashset import HashSetSummary
from repro.filters.bloom import BloomFilter, optimal_hash_count
from repro.filters.counting import CountingBloomFilter
from repro.filters.partitioned import PartitionedBloomFilter
from repro.hashing.batch import (
    mix64_batch,
    permutation_minima,
    permutation_minima_fold,
)
from repro.hashing.mix import mix64
from repro.hashing.permutations import PermutationFamily
from repro.reconcile.base import (
    Summary,
    SummaryError,
    clamped_symmetric_difference,
    hex_bytes,
    payload_int,
    payload_int_list,
    unhex_bytes,
)
from repro.reconcile.registry import register_summary

#: Default key universe, matching :data:`repro.delivery.working_set.
#: DEFAULT_KEY_UNIVERSE` (kept literal to avoid a delivery import here).
DEFAULT_UNIVERSE = 1 << 32


@lru_cache(maxsize=32)
def _shared_family(entries: int, universe: int, seed: int) -> PermutationFamily:
    """The min-wise permutation family for one parameter triple.

    :class:`PermutationFamily` is a pure function of its arguments (the
    paper fixes families "universally off-line"), and building one
    draws 128 modular inverses — far too costly to repeat per card
    when a large swarm refreshes thousands of cards per epoch.
    """
    return PermutationFamily(entries, universe, seed=seed)


def _estimate_intersection_from_resemblance(r: float, n_a: int, n_b: int) -> float:
    """``i = r (|A| + |B|) / (1 + r)`` (inclusion-exclusion, §4)."""
    return r * (n_a + n_b) / (1.0 + r) if r > 0.0 else 0.0


# ---------------------------------------------------------------------------
# Sketches (§4) — calling cards: estimate, never search
# ---------------------------------------------------------------------------


@register_summary
class MinwiseSummary(Summary):
    """Min-wise sketch: per-permutation minima (the paper's preferred card).

    Params: ``entries`` (permutation count, 128 ≈ the 1KB card),
    ``universe`` (key range), ``seed`` (the universally agreed family).
    """

    kind = "minwise"
    supports_merge = True
    supports_estimate = True
    supports_incremental = True

    def __init__(
        self,
        minima: List[Optional[int]],
        set_size: int,
        entries: int,
        universe: int,
        seed: int,
        local_ids: Optional[frozenset] = None,
    ):
        self.minima = list(minima)
        self.set_size = set_size
        self.entries = entries
        self.universe = universe
        self.seed = seed
        self._local_ids = local_ids

    @classmethod
    def build(
        cls,
        ids: Iterable[int],
        entries: int = 128,
        universe: int = DEFAULT_UNIVERSE,
        seed: int = 0,
    ) -> "MinwiseSummary":
        pool = frozenset(ids)
        family = _shared_family(entries, universe, seed)
        minima = permutation_minima(family, pool)
        return cls(minima, len(pool), entries, universe, seed, local_ids=pool)

    def absorb(self, new_ids: Iterable[int]) -> "MinwiseSummary":
        """Coordinate-wise min against the fresh ids' minima (min is
        associative, so this is exactly the union's sketch)."""
        pool = self._require_local("incremental min-wise update")
        fresh = frozenset(new_ids) - pool
        if not fresh:
            return self
        family = _shared_family(self.entries, self.universe, self.seed)
        merged = permutation_minima_fold(family, fresh, self.minima)
        union = pool | fresh
        return MinwiseSummary(
            merged, len(union), self.entries, self.universe, self.seed,
            local_ids=union,
        )

    def wire_bytes(self) -> int:
        return 4 + 8 * len(self.minima)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "entries": self.entries,
            "universe": self.universe,
            "seed": self.seed,
            "minima": list(self.minima),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MinwiseSummary":
        entries = payload_int(payload, "entries")
        minima = payload.get("minima")
        if not isinstance(minima, (list, tuple)) or len(minima) != entries:
            raise SummaryError("minwise payload needs one minimum per entry")
        for m in minima:
            if m is not None and (isinstance(m, bool) or not isinstance(m, int)):
                raise SummaryError(
                    f"minwise minima must be integers or null, got {m!r}"
                )
        return cls(
            list(minima),
            payload_int(payload, "set_size"),
            entries,
            payload_int(payload, "universe", DEFAULT_UNIVERSE),
            payload_int(payload, "seed", 0),
        )

    def compatible_build_params(self) -> Dict[str, Any]:
        return {"entries": self.entries, "universe": self.universe, "seed": self.seed}

    def _check_family(self, other: "MinwiseSummary") -> None:
        self._check_kind(other)
        if (self.entries, self.universe, self.seed) != (
            other.entries,
            other.universe,
            other.seed,
        ):
            raise SummaryError(
                "min-wise summaries are only comparable under the same "
                "universally agreed permutation family"
            )

    def merge(self, other: "MinwiseSummary") -> "MinwiseSummary":
        """Coordinate-wise minimum — the sketch of the union (§4)."""
        self._check_family(other)
        merged = [
            b if a is None else (a if b is None else min(a, b))
            for a, b in zip(self.minima, other.minima)
        ]
        ids, size = self._merged_local_ids(other)
        return MinwiseSummary(
            merged, size, self.entries, self.universe, self.seed, local_ids=ids
        )

    def estimate_resemblance(self, other: "MinwiseSummary") -> float:
        """Fraction of matching positions — unbiased estimate of ``r``."""
        self._check_family(other)
        if self.set_size == 0 and other.set_size == 0:
            return 0.0
        matches = sum(
            1
            for a, b in zip(self.minima, other.minima)
            if a is not None and a == b
        )
        return matches / len(self.minima)

    def estimate_difference(self, other: "MinwiseSummary") -> float:
        r = self.estimate_resemblance(other)
        i = _estimate_intersection_from_resemblance(r, self.set_size, other.set_size)
        return clamped_symmetric_difference(i, self.set_size, other.set_size)


@register_summary
class ModKSummary(Summary):
    """Mod-k sample: elements whose mixed key is ``0 (mod modulus)``.

    Params: ``modulus`` (expected sample = n/modulus), ``seed``,
    ``max_elements`` (bottom-k truncation, packet limits).
    """

    kind = "modk"
    supports_merge = True
    supports_estimate = True

    def __init__(
        self,
        sample: Iterable[int],
        set_size: int,
        modulus: int,
        seed: int,
        local_ids: Optional[frozenset] = None,
    ):
        self.sample = frozenset(sample)
        self.set_size = set_size
        self.modulus = modulus
        self.seed = seed
        self._local_ids = local_ids

    @classmethod
    def build(
        cls,
        ids: Iterable[int],
        modulus: int = 16,
        seed: int = 0,
        max_elements: Optional[int] = None,
    ) -> "ModKSummary":
        if modulus <= 0:
            raise SummaryError("modulus must be positive")
        pool = frozenset(ids)
        key_list = sorted(pool)
        mixed = mix64_batch(key_list, seed)
        sample = [x for x, h in zip(key_list, mixed) if h % modulus == 0]
        if max_elements is not None:
            if max_elements < 0:
                raise SummaryError("max_elements must be non-negative")
            # Bottom-k clip: both peers keep the smallest mixed keys, so
            # truncated samples stay comparable (§4's packet-limit fix).
            by_hash = sorted(sample, key=lambda x: mix64(x, seed))
            sample = by_hash[:max_elements]
        return cls(sample, len(pool), modulus, seed, local_ids=pool)

    def wire_bytes(self) -> int:
        return 4 + 8 * len(self.sample)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "modulus": self.modulus,
            "seed": self.seed,
            "sample": sorted(self.sample),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ModKSummary":
        return cls(
            payload_int_list(payload, "sample"),
            payload_int(payload, "set_size"),
            payload_int(payload, "modulus"),
            payload_int(payload, "seed", 0),
        )

    def compatible_build_params(self) -> Dict[str, Any]:
        return {"modulus": self.modulus, "seed": self.seed}

    def _check_comparable(self, other: "ModKSummary") -> None:
        self._check_kind(other)
        if (self.modulus, self.seed) != (other.modulus, other.seed):
            raise SummaryError(
                "mod-k summaries are only comparable with identical modulus and seed"
            )

    def merge(self, other: "ModKSummary") -> "ModKSummary":
        """Sample union — the mod-k sample of the set union."""
        self._check_comparable(other)
        ids, size = self._merged_local_ids(other)
        return ModKSummary(
            self.sample | other.sample, size, self.modulus, self.seed, local_ids=ids
        )

    def estimate_difference(self, other: "ModKSummary") -> float:
        self._check_comparable(other)
        union = len(self.sample | other.sample)
        r = len(self.sample & other.sample) / union if union else 0.0
        i = _estimate_intersection_from_resemblance(r, self.set_size, other.set_size)
        return clamped_symmetric_difference(i, self.set_size, other.set_size)


@register_summary
class RandomSampleSummary(Summary):
    """``k`` random keys with replacement (§4's first, simplest card).

    Params: ``k`` (sample size), ``seed`` (deterministic draw).  Two
    *remote* samples cannot be compared with each other (the paper's
    noted drawback); estimation needs one locally built side.
    """

    kind = "random_sample"
    supports_estimate = True

    def __init__(
        self,
        sample: List[int],
        set_size: int,
        seed: int,
        local_ids: Optional[frozenset] = None,
    ):
        self.sample = list(sample)
        self.set_size = set_size
        self.seed = seed
        self._local_ids = local_ids

    @classmethod
    def build(
        cls, ids: Iterable[int], k: int = 128, seed: int = 0,
    ) -> "RandomSampleSummary":
        if k < 0:
            raise SummaryError("sample size must be non-negative")
        pool = frozenset(ids)
        ordered = sorted(pool)
        rng = random.Random(seed)
        sample = [rng.choice(ordered) for _ in range(k)] if ordered else []
        return cls(sample, len(pool), seed, local_ids=pool)

    def wire_bytes(self) -> int:
        return 4 + 8 * len(self.sample)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "seed": self.seed,
            "sample": list(self.sample),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RandomSampleSummary":
        return cls(
            payload_int_list(payload, "sample"),
            payload_int(payload, "set_size"),
            payload_int(payload, "seed", 0),
        )

    def estimate_difference(self, other: "RandomSampleSummary") -> float:
        """Look ``other``'s sampled keys up in our own (local) set."""
        self._check_kind(other)
        local = self._require_local("random-sample difference estimation")
        if not other.sample:
            # No observations: fall back to the size-imbalance floor.
            return clamped_symmetric_difference(0.0, self.set_size, other.set_size)
        hits = sum(1 for key in other.sample if key in local)
        containment = hits / len(other.sample)  # |A ∩ B| / |B|, B = other
        i = containment * other.set_size
        return clamped_symmetric_difference(i, self.set_size, other.set_size)


# ---------------------------------------------------------------------------
# Searchable summaries (§5.2-5.3) — membership and difference search
# ---------------------------------------------------------------------------


@register_summary
class BloomSummary(Summary):
    """Bloom filter of the working set (§5.2, the searchable default).

    Params: ``bits_per_element``, ``k_hashes`` (None = optimal), ``seed``.
    """

    kind = "bloom"
    supports_membership = True
    supports_difference = True
    supports_merge = True
    supports_estimate = True
    supports_incremental = True

    #: Build parameters retained on local builds so :meth:`absorb` can
    #: replay the exact auto-sizing a rebuild would use; ``None`` after
    #: wire reconstruction (absorb then refuses via ``_require_local``).
    _build_params: Optional[Dict[str, Any]] = None

    def __init__(
        self,
        bloom: BloomFilter,
        set_size: int,
        local_ids: Optional[frozenset] = None,
    ):
        self.bloom = bloom
        self.set_size = set_size
        self._local_ids = local_ids

    @classmethod
    def build(
        cls,
        ids: Iterable[int],
        bits_per_element: int = 8,
        k_hashes: Optional[int] = None,
        seed: int = 0,
        m_bits: Optional[int] = None,
    ) -> "BloomSummary":
        """``m_bits`` pins the array size explicitly (skipping the
        n-scaled auto-sizing), which keeps :meth:`absorb` genuinely
        incremental: a fixed ``(m, k)`` never forces a resize rebuild.
        """
        pool = frozenset(ids)
        m, k = cls._sizing(len(pool), bits_per_element, k_hashes, m_bits)
        bloom = BloomFilter(m, k, seed)
        bloom.bulk_update(sorted(pool))
        out = cls(bloom, len(pool), local_ids=pool)
        out._build_params = {
            "bits_per_element": bits_per_element,
            "k_hashes": k_hashes,
            "seed": seed,
            "m_bits": m_bits,
        }
        return out

    @staticmethod
    def _sizing(
        n_ids: int,
        bits_per_element: int,
        k_hashes: Optional[int],
        m_bits: Optional[int],
    ) -> Tuple[int, int]:
        n = max(1, n_ids)
        m = m_bits if m_bits else max(8, bits_per_element * n)
        k = k_hashes if k_hashes is not None else optimal_hash_count(m, n)
        return m, k

    def absorb(self, new_ids: Iterable[int]) -> "BloomSummary":
        pool = self._require_local("incremental bloom update")
        if self._build_params is None:
            return super().absorb(new_ids)
        fresh = frozenset(new_ids) - pool
        if not fresh:
            return self
        union = pool | fresh
        p = self._build_params
        m, k = self._sizing(
            len(union), p["bits_per_element"], p["k_hashes"], p["m_bits"]
        )
        if (m, k) == (self.bloom.m, self.bloom.k):
            # Sizing unchanged: copy the live bits, OR in only the
            # fresh ids (scatter-OR is order-free, so this equals one
            # bulk build over the union bit for bit).
            bloom = BloomFilter.from_bytes(
                self.bloom.to_bytes(), m, k, self.bloom.seed
            )
            bloom.count = self.bloom.count
            bloom.bulk_update(sorted(fresh))
        else:
            bloom = BloomFilter(m, k, p["seed"])
            bloom.bulk_update(sorted(union))
        out = BloomSummary(bloom, len(union), local_ids=union)
        out._build_params = p
        return out

    def wire_bytes(self) -> int:
        return 4 + 12 + self.bloom.size_bytes()

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "m_bits": self.bloom.m,
            "k_hashes": self.bloom.k,
            "seed": self.bloom.seed,
            "count": self.bloom.count,
            "bits": hex_bytes(self.bloom.to_bytes()),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BloomSummary":
        try:
            bloom = BloomFilter.from_bytes(
                unhex_bytes(payload.get("bits"), "bits"),
                payload_int(payload, "m_bits"),
                payload_int(payload, "k_hashes"),
                payload_int(payload, "seed", 0),
            )
        except ValueError as exc:
            raise SummaryError(f"invalid bloom payload: {exc}") from exc
        bloom.count = payload_int(payload, "count", 0)
        return cls(bloom, payload_int(payload, "set_size"))

    def may_contain(self, key: int) -> bool:
        return key in self.bloom

    def merge(self, other: "BloomSummary") -> "BloomSummary":
        self._check_kind(other)
        try:
            union = self.bloom.union(other.bloom)
        except ValueError as exc:
            raise SummaryError(str(exc)) from exc
        ids, size = self._merged_local_ids(other)
        return BloomSummary(union, size, local_ids=ids)

    def estimate_difference(self, other: "Summary") -> float:
        """Stream our (local) ids through the other summary's membership."""
        local = self._require_local("bloom difference estimation")
        if not getattr(other, "supports_membership", False):
            raise SummaryError(
                f"cannot estimate against a {getattr(other, 'kind', '?')} summary"
            )
        ours_missing = sum(1 for key in local if not other.may_contain(key))
        i = len(local) - ours_missing
        return clamped_symmetric_difference(i, self.set_size, other.set_size)


@register_summary
class CountingBloomSummary(BloomSummary):
    """Counting Bloom filter (§5.2 background [11]): deletion-capable.

    Params: ``buckets_per_element``, ``k_hashes``, ``seed``.  Merging
    sums counters (saturating), so long-lived peers can fold summaries
    without losing the ability to delete later.
    """

    kind = "counting_bloom"
    supports_membership = True
    supports_difference = True
    supports_merge = True
    supports_estimate = True
    supports_incremental = True

    def __init__(
        self,
        cbf: CountingBloomFilter,
        set_size: int,
        local_ids: Optional[frozenset] = None,
    ):
        self.cbf = cbf
        self.set_size = set_size
        self._local_ids = local_ids

    @classmethod
    def build(
        cls,
        ids: Iterable[int],
        buckets_per_element: int = 8,
        k_hashes: int = 5,
        seed: int = 0,
        m_buckets: Optional[int] = None,
    ) -> "CountingBloomSummary":
        """``m_buckets`` pins the counter-array size (same role as
        ``m_bits`` on :class:`BloomSummary`): fixed sizing keeps
        :meth:`absorb` incremental instead of resize-rebuilding."""
        pool = frozenset(ids)
        if m_buckets:
            cbf = CountingBloomFilter(m_buckets, k_hashes, seed)
            for x in sorted(pool):
                cbf.add(x)
        else:
            cbf = CountingBloomFilter.for_elements(
                sorted(pool),
                buckets_per_element=buckets_per_element,
                k_hashes=k_hashes,
                seed=seed,
            )
        out = cls(cbf, len(pool), local_ids=pool)
        out._build_params = {
            "buckets_per_element": buckets_per_element,
            "k_hashes": k_hashes,
            "seed": seed,
            "m_buckets": m_buckets,
        }
        return out

    def absorb(self, new_ids: Iterable[int]) -> "CountingBloomSummary":
        pool = self._require_local("incremental counting-bloom update")
        if self._build_params is None:
            return Summary.absorb(self, new_ids)
        fresh = frozenset(new_ids) - pool
        if not fresh:
            return self
        union = pool | fresh
        p = self._build_params
        m = p["m_buckets"] or max(
            8, p["buckets_per_element"] * max(1, len(union))
        )
        if m == self.cbf.m:
            # Saturating increments commute, so adding only the fresh
            # ids onto copied counters equals one build over the union.
            cbf = CountingBloomFilter.from_bytes(
                self.cbf.to_bytes(), m, self.cbf.k, self.cbf.seed,
                count=self.cbf.count,
            )
            for x in sorted(fresh):
                cbf.add(x)
        else:
            cbf = CountingBloomFilter.for_elements(
                sorted(union),
                buckets_per_element=p["buckets_per_element"],
                k_hashes=p["k_hashes"],
                seed=p["seed"],
            )
        out = CountingBloomSummary(cbf, len(union), local_ids=union)
        out._build_params = p
        return out

    def wire_bytes(self) -> int:
        return 4 + 12 + self.cbf.size_bytes()

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "m_buckets": self.cbf.m,
            "k_hashes": self.cbf.k,
            "seed": self.cbf.seed,
            "count": self.cbf.count,
            "counters": hex_bytes(self.cbf.to_bytes()),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CountingBloomSummary":
        try:
            cbf = CountingBloomFilter.from_bytes(
                unhex_bytes(payload.get("counters"), "counters"),
                payload_int(payload, "m_buckets"),
                payload_int(payload, "k_hashes"),
                payload_int(payload, "seed", 0),
                count=payload_int(payload, "count", 0),
            )
        except ValueError as exc:
            raise SummaryError(f"invalid counting-bloom payload: {exc}") from exc
        return cls(cbf, payload_int(payload, "set_size"))

    def may_contain(self, key: int) -> bool:
        return key in self.cbf

    def merge(self, other: "CountingBloomSummary") -> "CountingBloomSummary":
        self._check_kind(other)
        try:
            merged = self.cbf.merge(other.cbf)
        except ValueError as exc:
            raise SummaryError(str(exc)) from exc
        ids, size = self._merged_local_ids(other)
        return CountingBloomSummary(merged, size, local_ids=ids)


@register_summary
class PartitionedBloomSummary(Summary):
    """One residue-class partition filter (§5.2's "scaling up" step).

    Params: ``rho`` (partition count), ``beta`` (this filter's
    residue), ``bits_per_element``, ``k_hashes``, ``seed``.  Covers
    only keys ``≡ beta (mod rho)``: :meth:`may_contain` answers True
    (unknown) for uncovered keys, and :meth:`missing_from` reports
    definite differences within the covered class only — further
    partitions pipeline over as separate summaries.
    """

    kind = "partitioned_bloom"
    supports_membership = True
    supports_difference = True
    supports_estimate = True
    partial_coverage = True

    def __init__(
        self,
        pf: PartitionedBloomFilter,
        set_size: int,
        local_ids: Optional[frozenset] = None,
    ):
        self.pf = pf
        self.set_size = set_size
        self._local_ids = local_ids

    @classmethod
    def build(
        cls,
        ids: Iterable[int],
        rho: int = 4,
        beta: int = 0,
        bits_per_element: int = 8,
        k_hashes: Optional[int] = None,
        seed: int = 0,
    ) -> "PartitionedBloomSummary":
        pool = frozenset(ids)
        try:
            pf = PartitionedBloomFilter(
                sorted(pool),
                rho=rho,
                beta=beta,
                bits_per_element=bits_per_element,
                k_hashes=k_hashes,
                seed=seed,
            )
        except ValueError as exc:
            raise SummaryError(str(exc)) from exc
        return cls(pf, len(pool), local_ids=pool)

    def wire_bytes(self) -> int:
        return 4 + 12 + 8 + self.pf.size_bytes()  # + (rho, beta) header

    def to_payload(self) -> Dict[str, Any]:
        inner = self.pf.bloom
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "rho": self.pf.rho,
            "beta": self.pf.beta,
            "seed": self.pf.seed,
            "member_count": self.pf.member_count,
            "m_bits": inner.m,
            "k_hashes": inner.k,
            "bits": hex_bytes(inner.to_bytes()),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PartitionedBloomSummary":
        seed = payload_int(payload, "seed", 0)
        try:
            bloom = BloomFilter.from_bytes(
                unhex_bytes(payload.get("bits"), "bits"),
                payload_int(payload, "m_bits"),
                payload_int(payload, "k_hashes"),
                seed,
            )
            pf = PartitionedBloomFilter.from_filter(
                bloom,
                rho=payload_int(payload, "rho"),
                beta=payload_int(payload, "beta"),
                seed=seed,
                member_count=payload_int(payload, "member_count", 0),
            )
        except ValueError as exc:
            raise SummaryError(f"invalid partitioned-bloom payload: {exc}") from exc
        return cls(pf, payload_int(payload, "set_size"))

    def may_contain(self, key: int) -> bool:
        # Uncovered keys are unknown — "may contain" is the sound answer.
        if not self.pf.covers(key):
            return True
        return key in self.pf

    def missing_from(self, candidates: Iterable[int]) -> List[int]:
        """Definite differences within the covered residue class."""
        return list(self.pf.missing_from(candidates))

    def estimate_difference(self, other: "Summary") -> float:
        """Extrapolate the covered class's difference to the whole set."""
        local = self._require_local("partitioned-bloom difference estimation")
        if not isinstance(other, PartitionedBloomSummary):
            raise SummaryError(
                f"cannot estimate against a {getattr(other, 'kind', '?')} summary"
            )
        covered = [key for key in local if other.pf.covers(key)]
        if not covered:
            return clamped_symmetric_difference(
                float(min(self.set_size, other.set_size)),
                self.set_size,
                other.set_size,
            )
        missing = sum(1 for key in covered if key not in other.pf)
        scale = len(local) / len(covered)
        i = len(local) - missing * scale
        return clamped_symmetric_difference(i, self.set_size, other.set_size)


@register_summary
class ARTSummaryAdapter(Summary):
    """Approximate reconciliation tree (§5.3): Bloom-folded hash trie.

    Params: ``bits_per_element`` (total Bloom budget),
    ``leaf_bits_per_element`` (split; None = even), ``seed`` (the
    agreed hash functions), ``correction`` (search tolerance for
    internal false positives).  :meth:`missing_from` runs the paper's
    ``O(d log n)`` trie search; :meth:`may_contain` probes the leaf
    filter with the key's value hash.
    """

    kind = "art"
    supports_membership = True
    supports_difference = True
    supports_estimate = True

    def __init__(
        self,
        summary: ARTSummary,
        set_size: int,
        correction: int = 1,
        trie: Optional[ReconciliationTrie] = None,
        local_ids: Optional[frozenset] = None,
    ):
        self.art_summary = summary
        self.set_size = set_size
        self.correction = correction
        self._trie = trie
        self._local_ids = local_ids

    @classmethod
    def build(
        cls,
        ids: Iterable[int],
        bits_per_element: int = 8,
        leaf_bits_per_element: Optional[float] = None,
        seed: int = 0,
        correction: int = 1,
    ) -> "ARTSummaryAdapter":
        if correction < 0:
            raise SummaryError("correction level must be non-negative")
        pool = frozenset(ids)
        try:
            art = ApproximateReconciliationTree(
                pool,
                bits_per_element=bits_per_element,
                leaf_bits_per_element=leaf_bits_per_element,
                seed=seed,
            )
            summary = art.summary()
        except ValueError as exc:
            raise SummaryError(str(exc)) from exc
        return cls(
            summary, len(pool), correction=correction, trie=art.trie, local_ids=pool
        )

    def wire_bytes(self) -> int:
        return 4 + 2 * 12 + self.art_summary.size_bytes()

    def to_payload(self) -> Dict[str, Any]:
        leaf, internal = self.art_summary.leaf_filter, self.art_summary.internal_filter
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "seed": self.art_summary.seed,
            "bits_per_element": self.art_summary.bits_per_element,
            "leaf_bits_per_element": self.art_summary.leaf_bits_per_element,
            "correction": self.correction,
            "leaf": {
                "m_bits": leaf.m,
                "k_hashes": leaf.k,
                "seed": leaf.seed,
                "bits": hex_bytes(leaf.to_bytes()),
            },
            "internal": {
                "m_bits": internal.m,
                "k_hashes": internal.k,
                "seed": internal.seed,
                "bits": hex_bytes(internal.to_bytes()),
            },
        }

    @staticmethod
    def _filter_from(payload: Any, field: str) -> BloomFilter:
        if not isinstance(payload, dict):
            raise SummaryError(f"art payload field {field!r} must be an object")
        try:
            return BloomFilter.from_bytes(
                unhex_bytes(payload.get("bits"), f"{field}.bits"),
                payload_int(payload, "m_bits"),
                payload_int(payload, "k_hashes"),
                payload_int(payload, "seed", 0),
            )
        except ValueError as exc:
            raise SummaryError(f"invalid art payload: {exc}") from exc

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ARTSummaryAdapter":
        bpe = payload.get("bits_per_element", 8)
        leaf_bpe = payload.get("leaf_bits_per_element")
        summary = ARTSummary.from_filters(
            cls._filter_from(payload.get("leaf"), "leaf"),
            cls._filter_from(payload.get("internal"), "internal"),
            seed=payload_int(payload, "seed", 0),
            bits_per_element=bpe,
            leaf_bits_per_element=leaf_bpe,
        )
        return cls(
            summary,
            payload_int(payload, "set_size"),
            correction=payload_int(payload, "correction", 1),
        )

    def compatible_build_params(self) -> Dict[str, Any]:
        return {"seed": self.art_summary.seed, "correction": self.correction}

    def may_contain(self, key: int) -> bool:
        """Probe the leaf filter with the key's (seed-only) value hash."""
        return self.art_summary.matches_leaf(
            value_hash(key, self.art_summary.seed)
        )

    def missing_from(self, candidates: Iterable[int]) -> List[int]:
        """The paper's search: walk the candidates' trie against us."""
        trie = ReconciliationTrie(candidates, seed=self.art_summary.seed)
        stats = find_difference(trie, self.art_summary, correction=self.correction)
        return stats.differences

    def estimate_difference(self, other: "Summary") -> float:
        """Search our own (local) trie against the other summary."""
        self._check_kind(other)
        self._require_local("art difference estimation")
        assert isinstance(other, ARTSummaryAdapter)
        if self._trie is None or self._trie.seed != other.art_summary.seed:
            raise SummaryError(
                "art summaries are only comparable under the same agreed hash seed"
            )
        stats = find_difference(
            self._trie, other.art_summary, correction=other.correction
        )
        i = self.set_size - len(stats.differences)
        return clamped_symmetric_difference(i, self.set_size, other.set_size)


# ---------------------------------------------------------------------------
# Exact baselines (§5.1)
# ---------------------------------------------------------------------------


@register_summary
class CPISummary(Summary):
    """Characteristic-polynomial evaluations (Minsky-Trachtenberg-Zippel).

    Params: ``max_discrepancy`` (the bound ``d`` the sketch is sized
    for), ``seed`` (the agreed evaluation points).  ``O(d)`` words on
    the wire; :meth:`missing_from` recovers ``candidates - S`` exactly
    — or raises :class:`~repro.exact.cpi.DiscrepancyExceeded` when the
    bound was too small, exactly as the protocol in [19] retries.
    """

    kind = "cpi"
    supports_difference = True
    supports_estimate = True
    exact = True

    def __init__(
        self,
        sketch: CPISketch,
        local_ids: Optional[frozenset] = None,
    ):
        self.sketch = sketch
        self.set_size = sketch.set_size
        self._local_ids = local_ids

    @classmethod
    def build(
        cls,
        ids: Iterable[int],
        max_discrepancy: int = 64,
        seed: int = 0,
    ) -> "CPISummary":
        pool = frozenset(ids)
        try:
            reconciler = CharacteristicPolynomialReconciler(max_discrepancy, seed)
            sketch = reconciler.sketch(sorted(pool))
        except ValueError as exc:
            raise SummaryError(str(exc)) from exc
        return cls(sketch, local_ids=pool)

    def _reconciler(self) -> CharacteristicPolynomialReconciler:
        return CharacteristicPolynomialReconciler(
            self.sketch.max_discrepancy, self.sketch.seed
        )

    @staticmethod
    def wire_bytes_for_bound(max_discrepancy: int) -> int:
        """Wire size a sketch sized for ``max_discrepancy`` would have.

        Computed through the real :meth:`CPISketch.size_bytes`, so
        reported-but-not-run cells (the ``summary_tradeoff`` scenario's
        "prohibitively large d" regime) can never drift from the cost
        a run cell would report.
        """
        from repro.exact.cpi import VERIFY_POINTS

        sketch = CPISketch(
            evaluations=[0] * max_discrepancy,
            verify_evaluations=[0] * VERIFY_POINTS,
            set_size=0,
            max_discrepancy=max_discrepancy,
            seed=0,
        )
        return 4 + sketch.size_bytes()

    def wire_bytes(self) -> int:
        return 4 + self.sketch.size_bytes()

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "max_discrepancy": self.sketch.max_discrepancy,
            "seed": self.sketch.seed,
            "evaluations": list(self.sketch.evaluations),
            "verify_evaluations": list(self.sketch.verify_evaluations),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CPISummary":
        sketch = CPISketch(
            evaluations=payload_int_list(payload, "evaluations"),
            verify_evaluations=payload_int_list(payload, "verify_evaluations"),
            set_size=payload_int(payload, "set_size"),
            max_discrepancy=payload_int(payload, "max_discrepancy"),
            seed=payload_int(payload, "seed", 0),
        )
        return cls(sketch)

    def missing_from(self, candidates: Iterable[int]) -> List[int]:
        """Recover ``candidates - S`` exactly (raises past the bound)."""
        return sorted(self._reconciler().difference(self.sketch, candidates))

    def estimate_difference(self, other: "Summary") -> float:
        """Exact discrepancy, computed from our retained ids."""
        self._check_kind(other)
        local = self._require_local("cpi difference estimation")
        assert isinstance(other, CPISummary)
        ours_minus_theirs = other._reconciler().difference(other.sketch, local)
        i = len(local) - len(ours_minus_theirs)
        return clamped_symmetric_difference(i, self.set_size, other.set_size)


@register_summary
class HashSetSummaryAdapter(Summary):
    """Hashed-key set (§5.1): exact up to inverse-polynomial misses.

    Params: ``hash_bits`` (0 = the paper's ``poly(|S|)`` auto-sizing),
    ``seed``.  Two hash sets compare directly, so estimation works
    wire-to-wire without local ids.
    """

    kind = "hashset"
    supports_membership = True
    supports_difference = True
    supports_merge = True
    supports_estimate = True
    supports_incremental = True

    #: ``hash_bits`` as requested at build time (0 = poly auto-sizing);
    #: ``None`` after wire reconstruction, which cannot absorb.
    _requested_bits: Optional[int] = None

    def __init__(
        self,
        summary: HashSetSummary,
        set_size: int,
        local_ids: Optional[frozenset] = None,
    ):
        self.hashset = summary
        self.set_size = set_size
        self._local_ids = local_ids

    @classmethod
    def build(
        cls, ids: Iterable[int], hash_bits: int = 0, seed: int = 0,
    ) -> "HashSetSummaryAdapter":
        pool = frozenset(ids)
        try:
            if hash_bits:
                summary = HashSetSummary(sorted(pool), hash_bits=hash_bits, seed=seed)
            else:
                summary = HashSetSummary.with_polynomial_range(sorted(pool), seed=seed)
        except ValueError as exc:
            raise SummaryError(str(exc)) from exc
        out = cls(summary, len(pool), local_ids=pool)
        out._requested_bits = hash_bits
        return out

    def absorb(self, new_ids: Iterable[int]) -> "HashSetSummaryAdapter":
        pool = self._require_local("incremental hash-set update")
        if self._requested_bits is None:
            return super().absorb(new_ids)
        fresh = frozenset(new_ids) - pool
        if not fresh:
            return self
        union = pool | fresh
        if self._requested_bits:
            bits = self._requested_bits
        else:
            bits = HashSetSummary.polynomial_bits(len(union))
        if bits == self.hashset.hash_bits:
            hashes = self.hashset.hashes | {
                mix64(x, self.hashset.seed) >> (64 - bits) for x in fresh
            }
            summary = HashSetSummary.from_hashes(
                hashes, hash_bits=bits, seed=self.hashset.seed
            )
        else:
            summary = HashSetSummary(
                sorted(union), hash_bits=bits, seed=self.hashset.seed
            )
        out = HashSetSummaryAdapter(summary, len(union), local_ids=union)
        out._requested_bits = self._requested_bits
        return out

    def wire_bytes(self) -> int:
        return 4 + 2 + self.hashset.size_bytes()  # + hash-width header

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "hash_bits": self.hashset.hash_bits,
            "seed": self.hashset.seed,
            "hashes": sorted(self.hashset.hashes),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "HashSetSummaryAdapter":
        summary = HashSetSummary.from_hashes(
            payload_int_list(payload, "hashes"),
            hash_bits=payload_int(payload, "hash_bits"),
            seed=payload_int(payload, "seed", 0),
        )
        return cls(summary, payload_int(payload, "set_size"))

    def compatible_build_params(self) -> Dict[str, Any]:
        return {"hash_bits": self.hashset.hash_bits, "seed": self.hashset.seed}

    def _check_comparable(self, other: "HashSetSummaryAdapter") -> None:
        self._check_kind(other)
        if (self.hashset.hash_bits, self.hashset.seed) != (
            other.hashset.hash_bits,
            other.hashset.seed,
        ):
            raise SummaryError(
                "hash-set summaries are only comparable with identical "
                "hash width and seed"
            )

    def may_contain(self, key: int) -> bool:
        return key in self.hashset

    def merge(self, other: "HashSetSummaryAdapter") -> "HashSetSummaryAdapter":
        self._check_comparable(other)
        merged = HashSetSummary.from_hashes(
            self.hashset.hashes | other.hashset.hashes,
            hash_bits=self.hashset.hash_bits,
            seed=self.hashset.seed,
        )
        ids, size = self._merged_local_ids(other, fallback=len(merged.hashes))
        return HashSetSummaryAdapter(merged, size, local_ids=ids)

    def estimate_difference(self, other: "HashSetSummaryAdapter") -> float:
        """Hash sets compare directly — no local ids needed."""
        self._check_comparable(other)
        i = len(self.hashset.hashes & other.hashset.hashes)
        return clamped_symmetric_difference(i, self.set_size, other.set_size)


@register_summary
class WholeSetSummary(Summary):
    """Explicit key transfer — the trivial exact baseline (§5.1).

    Params: ``key_bits`` (wire width per key).  The ids *are* the
    payload, so every capability is supported and exact; the cost is
    the ``O(|S| log u)`` wire size everything else exists to avoid.
    """

    kind = "wholeset"
    supports_membership = True
    supports_difference = True
    supports_merge = True
    supports_estimate = True
    exact = True

    def __init__(self, ids: Iterable[int], key_bits: int = 64):
        if not 8 <= key_bits <= 64:
            raise SummaryError("key width must be between 8 and 64 bits")
        pool = frozenset(ids)
        self.ids = pool
        self.key_bits = key_bits
        self.set_size = len(pool)
        self._local_ids = pool

    @classmethod
    def build(
        cls, ids: Iterable[int], key_bits: int = 64,
    ) -> "WholeSetSummary":
        return cls(ids, key_bits=key_bits)

    def wire_bytes(self) -> int:
        # Ceiling division: a 12-bit key width really costs 1.5 B/key.
        return 4 + (self.key_bits * self.set_size + 7) // 8

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "set_size": self.set_size,
            "key_bits": self.key_bits,
            "ids": sorted(self.ids),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "WholeSetSummary":
        return cls(
            payload_int_list(payload, "ids"),
            key_bits=payload_int(payload, "key_bits", 64),
        )

    def may_contain(self, key: int) -> bool:
        return key in self.ids

    def missing_from(self, candidates: Iterable[int]) -> List[int]:
        return [key for key in candidates if key not in self.ids]

    def merge(self, other: "WholeSetSummary") -> "WholeSetSummary":
        self._check_kind(other)
        return WholeSetSummary(self.ids | other.ids, key_bits=self.key_bits)

    def estimate_difference(self, other: "WholeSetSummary") -> float:
        self._check_kind(other)
        return float(len(self.ids ^ other.ids))


__all__ = [
    "DEFAULT_UNIVERSE",
    "MinwiseSummary",
    "ModKSummary",
    "RandomSampleSummary",
    "BloomSummary",
    "CountingBloomSummary",
    "PartitionedBloomSummary",
    "ARTSummaryAdapter",
    "CPISummary",
    "HashSetSummaryAdapter",
    "WholeSetSummary",
]
