"""repro.reconcile — one ``Summary`` interface from sketches to specs.

The paper's peers choose among summaries of varying cost and precision:
min-wise sketches as calling cards (§4), Bloom filters and approximate
reconciliation trees as searchable summaries (§5.2-5.3), and exact
reconciliation as the baseline (§5.1).  This package makes them
interchangeable behind a single interface so the accuracy-vs-overhead
trade-off becomes a parameter instead of a code path:

>>> from repro.reconcile import build_summary
>>> mine = build_summary("bloom", my_ids, bits_per_element=8)
>>> wire = mine.to_payload()                  # JSON-able, honest bytes
>>> theirs = summary_from_payload(wire)       # the receiving peer
>>> useful = theirs.missing_from(their_ids)   # guaranteed-useful ids

* :class:`Summary` — the abstract interface: ``build`` /
  ``wire_bytes`` / ``to_payload`` / ``from_payload`` / ``merge`` plus
  the capability-flagged reconciliation surface (``may_contain``,
  ``missing_from``, ``estimate_difference``).
* :mod:`repro.reconcile.registry` — string-keyed adapter registry
  (``build_summary("art", ids)``); :func:`summary_kinds` lists it.
* :mod:`repro.reconcile.adapters` — one adapter per structure:
  ``minwise``, ``modk``, ``random_sample``, ``bloom``,
  ``counting_bloom``, ``partitioned_bloom``, ``art``, ``cpi``,
  ``hashset``, ``wholeset``.
* :class:`SummaryPolicy` — how a peer pairs a calling-card sketch with
  a reconciliation summary; consumed by :class:`~repro.protocol.peer.
  ProtocolPeer` and the delivery strategies.
"""

from repro.reconcile.base import Summary, SummaryError
from repro.reconcile.registry import (
    UnknownSummaryError,
    build_summary,
    register_summary,
    summary_class,
    summary_from_payload,
    summary_kinds,
)
# Importing the adapters registers every built-in kind.
from repro.reconcile import adapters as _adapters  # noqa: F401
from repro.reconcile.policy import (
    DEFAULT_POLICY,
    SummaryPolicy,
    correlation_from_summaries,
)

__all__ = [
    "Summary",
    "SummaryError",
    "UnknownSummaryError",
    "register_summary",
    "summary_class",
    "summary_kinds",
    "build_summary",
    "summary_from_payload",
    "SummaryPolicy",
    "DEFAULT_POLICY",
    "correlation_from_summaries",
]
