"""The one ``Summary`` interface from sketches to exact reconciliation.

The paper's peers exchange working-set summaries of varying cost and
precision — min-wise sketches as calling cards (§4), Bloom filters and
approximate reconciliation trees as searchable summaries (§5.2-5.3),
characteristic-polynomial and whole-set transfers as exact baselines
(§5.1) — and pick the cheapest one that makes recoding useful.  This
module defines the uniform surface that makes those structures
interchangeable: every adapter builds from a set of symbol ids, reports
an honest wire size, round-trips through a JSON-able payload, and
exposes whichever reconciliation capabilities its structure supports,
declared through class-level capability flags.

Capability flags (all ``False`` on the base class):

* ``supports_membership`` — :meth:`Summary.may_contain` answers
  single-key queries ("no" is always definite; "yes" may be a false
  positive).
* ``supports_difference`` — :meth:`Summary.missing_from` can compute,
  from a *received* summary, which candidate keys the summarised set
  definitely lacks (the sender-side reconciliation primitive).
* ``supports_merge`` — :meth:`Summary.merge` combines two summaries
  into the summary of the union (three-party overlap checks, §4).
* ``supports_estimate`` — :meth:`Summary.estimate_difference`
  estimates the symmetric-difference size ``|A Δ B|`` against another
  summary of the same kind.
* ``exact`` — :meth:`Summary.missing_from` returns exactly the set
  difference (no approximation beyond the structure's stated
  collision bounds).

Some estimators need the builder's original ids (a Bloom filter can
count which of *its own* elements fall outside a received filter, but a
wire-reconstructed filter no longer knows its elements).  Summaries
built locally via :meth:`Summary.build` retain their ids; summaries
reconstructed via :meth:`Summary.from_payload` do not, and methods that
need them raise :class:`SummaryError` with a clear message.
"""

import abc
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Sequence


class SummaryError(ValueError):
    """A summary operation its structure cannot support (or bad params)."""


class Summary(abc.ABC):
    """A working-set summary exchangeable between peers.

    Concrete adapters set ``kind`` (the registry key) and the
    capability flags, and implement the abstract surface.  ``set_size``
    — the number of distinct summarised ids — always travels with the
    summary; every honest ``wire_bytes`` includes its 4-byte header.
    """

    #: Registry key (e.g. ``"bloom"``); set by every adapter.
    kind: ClassVar[str] = ""
    supports_membership: ClassVar[bool] = False
    supports_difference: ClassVar[bool] = False
    supports_merge: ClassVar[bool] = False
    supports_estimate: ClassVar[bool] = False
    exact: ClassVar[bool] = False
    #: True when :meth:`missing_from` is authoritative for only part of
    #: the key space (one residue partition, say) — difference *counts*
    #: then understate the truth and must not feed correlation directly.
    partial_coverage: ClassVar[bool] = False
    #: True when :meth:`absorb` can fold newly added ids into a locally
    #: built summary, producing exactly what a from-scratch rebuild over
    #: the union would (min-wise minima, Bloom-family bit arrays);
    #: structures whose content depends globally on the full set (mod-k
    #: truncation, ART tries, CPI polynomials, ...) leave this False and
    #: keep the rebuild path.
    supports_incremental: ClassVar[bool] = False

    #: Number of distinct ids summarised (travels in the 4-byte header).
    set_size: int = 0

    #: The builder's original ids; ``None`` after wire reconstruction.
    _local_ids: Optional[frozenset] = None

    # -- construction -----------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def build(cls, ids: Iterable[int], **params: Any) -> "Summary":
        """Summarise ``ids``; adapter-specific ``params`` size the result."""

    # -- wire surface -----------------------------------------------------

    @abc.abstractmethod
    def wire_bytes(self) -> int:
        """Honest serialised size in bytes, headers included."""

    @abc.abstractmethod
    def to_payload(self) -> Dict[str, Any]:
        """JSON-able payload, inverse of :meth:`from_payload`.

        Always includes ``"kind"`` and ``"set_size"``; bulk binary
        content travels as hex strings.
        """

    @classmethod
    @abc.abstractmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Summary":
        """Reconstruct a summary received over the wire."""

    # -- reconciliation surface (capability-flagged) ----------------------

    def may_contain(self, key: int) -> bool:
        """Single-key membership: False is definite, True may be an FP."""
        raise SummaryError(
            f"{self.kind or type(self).__name__} summaries do not support "
            "single-key membership queries"
        )

    def __contains__(self, key: int) -> bool:
        return self.may_contain(key)

    def missing_from(self, candidates: Iterable[int]) -> List[int]:
        """Candidate keys definitely absent from the summarised set.

        The sender-side reconciliation primitive: stream your working
        set through a received summary; whatever falls out is
        guaranteed useful to the summariser.  The default walks
        :meth:`may_contain`; structures with a cheaper search (ARTs)
        or a global recovery (CPI) override it.
        """
        if not self.supports_membership:
            raise SummaryError(
                f"{self.kind or type(self).__name__} summaries cannot "
                "compute set differences; use an estimate-capable method"
            )
        return [key for key in candidates if not self.may_contain(key)]

    def merge(self, other: "Summary") -> "Summary":
        """Summary of the union of the two summarised sets."""
        raise SummaryError(
            f"{self.kind or type(self).__name__} summaries do not support merging"
        )

    def absorb(self, new_ids: Iterable[int]) -> "Summary":
        """Fold newly added ids in; **bit-identical** to a full rebuild.

        Returns a new summary equal — payload for payload — to
        ``type(self).build(old_ids | set(new_ids), **same build params)``.
        Never mutates ``self`` (cached references stay valid), requires
        a locally built summary (wire reconstructions no longer know
        their ids or build parameters), and may fall back to an internal
        rebuild when the structure's auto-sizing changes with the new
        cardinality — the contract is the output, not the work saved.
        Ids already summarised are ignored.
        """
        raise SummaryError(
            f"{self.kind or type(self).__name__} summaries do not support "
            "incremental updates; rebuild from the full id set"
        )

    def add(self, key: int) -> "Summary":
        """Absorb a single id — sugar over :meth:`absorb`."""
        return self.absorb((key,))

    def estimate_difference(self, other: "Summary") -> float:
        """Estimated symmetric-difference size ``|A Δ B|``."""
        raise SummaryError(
            f"{self.kind or type(self).__name__} summaries do not support "
            "difference estimation"
        )

    # -- shared helpers ---------------------------------------------------

    @property
    def is_local(self) -> bool:
        """True when this summary still knows the ids it was built from."""
        return self._local_ids is not None

    def _require_local(self, what: str) -> frozenset:
        if self._local_ids is None:
            raise SummaryError(
                f"{what} needs the summary's original ids; this {self.kind} "
                "summary was reconstructed from the wire and no longer has them"
            )
        return self._local_ids

    def compatible_build_params(self) -> Dict[str, Any]:
        """Build parameters a peer needs to construct a *comparable* summary.

        Family-keyed structures (min-wise permutations, mod-k sampling,
        hash sets, ART hash seeds) return the agreement parameters a
        local counterpart must share; structures whose estimators need
        only the local ids return ``{}``.
        """
        return {}

    def _merged_local_ids(self, other: "Summary", fallback: Optional[int] = None):
        """``(ids, size)`` for a merge result.

        The union's exact ids (and size) when both sides were built
        locally; otherwise ``(None, fallback)`` — defaulting to the
        larger operand's size, the tightest bound a wire-reconstructed
        pair can assert.
        """
        if self._local_ids is not None and other._local_ids is not None:
            ids = self._local_ids | other._local_ids
            return ids, len(ids)
        if fallback is None:
            fallback = max(self.set_size, other.set_size)
        return None, fallback

    def _check_kind(self, other: "Summary") -> None:
        if not isinstance(other, Summary) or other.kind != self.kind:
            raise SummaryError(
                f"cannot combine a {self.kind} summary with "
                f"{getattr(other, 'kind', type(other).__name__)!r}"
            )

    @classmethod
    def capabilities(cls) -> Dict[str, bool]:
        """The capability flags as a dict (docs, tests, policy checks)."""
        return {
            "membership": cls.supports_membership,
            "difference": cls.supports_difference,
            "merge": cls.supports_merge,
            "estimate": cls.supports_estimate,
            "exact": cls.exact,
            "incremental": cls.supports_incremental,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} kind={self.kind!r} n={self.set_size} "
            f"wire={self.wire_bytes()}B local={self.is_local}>"
        )


def clamped_symmetric_difference(
    intersection: float, size_a: int, size_b: int
) -> float:
    """``|A| + |B| - 2|A ∩ B|`` clamped to the feasible range.

    Estimators produce noisy intersections; the symmetric difference
    can never be negative nor smaller than the size imbalance
    ``||A| - |B||``, nor larger than ``|A| + |B|``.
    """
    d = size_a + size_b - 2.0 * intersection
    return min(float(size_a + size_b), max(float(abs(size_a - size_b)), d))


def hex_bytes(data: bytes) -> str:
    """Bytes -> hex string (JSON-able payload bulk)."""
    return data.hex()


def unhex_bytes(text: Any, field: str) -> bytes:
    """Hex string -> bytes, folding bad input into :class:`SummaryError`."""
    if not isinstance(text, str):
        raise SummaryError(f"payload field {field!r} must be a hex string")
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise SummaryError(f"payload field {field!r} is not valid hex: {exc}") from exc


def payload_int(payload: Dict[str, Any], field: str, default: Optional[int] = None) -> int:
    """Strict integer payload accessor (bools and floats rejected)."""
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SummaryError(f"payload field {field!r} must be an integer, got {value!r}")
    return value


def payload_int_list(payload: Dict[str, Any], field: str) -> List[int]:
    """Strict list-of-ints payload accessor."""
    value = payload.get(field)
    if not isinstance(value, (list, tuple)):
        raise SummaryError(f"payload field {field!r} must be an array of integers")
    out: List[int] = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise SummaryError(
                f"payload field {field!r} must contain only integers, got {item!r}"
            )
        out.append(item)
    return out


__all__ = [
    "Summary",
    "SummaryError",
    "clamped_symmetric_difference",
    "hex_bytes",
    "unhex_bytes",
    "payload_int",
    "payload_int_list",
]
