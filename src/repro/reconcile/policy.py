"""Summary policies: which summaries a peer builds, and how it uses them.

A :class:`SummaryPolicy` bundles the two summary roles the protocol
distinguishes (§3): the cheap *calling card* every hello carries
(min-wise by default) and the *reconciliation summary* shipped when
finer-grained information pays for itself (Bloom by default).
:class:`~repro.protocol.peer.ProtocolPeer`, :class:`~repro.protocol.
session.TransferSession`, and :func:`repro.delivery.strategies.
make_strategy` consume policies instead of hardcoding min-wise/Bloom,
which is what lets one experiment spec swap ``bloom`` for ``art`` or
``cpi`` and measure the paper's accuracy-vs-overhead trade-off.
"""

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.reconcile.base import Summary, SummaryError
from repro.reconcile.registry import build_summary, summary_class


def _freeze(params: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not params:
        return ()
    return tuple(sorted(params.items()))


def correlation_from_summaries(
    ours: Summary, theirs: Summary, local_size: int
) -> float:
    """``|L ∩ R| / |L|`` from two comparable summaries.

    The one inclusion-exclusion estimator behind every correlation
    signal in the stack (§4): ``ours`` must be the locally built side,
    ``theirs`` the received one; ``local_size`` is ``|L|``.  Used by
    the protocol handshake, :meth:`ProtocolPeer.
    estimate_peer_correlation`, and :meth:`SummaryPolicy.correlation`.
    """
    if local_size <= 0:
        return 0.0
    from repro.exact.cpi import DiscrepancyExceeded

    try:
        d = ours.estimate_difference(theirs)
    except DiscrepancyExceeded:
        # An exceeded CPI bound *is* evidence: the discrepancy is
        # larger than the sketch was sized for, so overlap is small.
        return 0.0
    inter = (local_size + theirs.set_size - d) / 2.0
    return min(1.0, max(0.0, inter / local_size))


class SummaryPolicy:
    """How a peer summarises its working set and reconciles with others.

    Args:
        kind: registry key of the reconciliation summary (``"bloom"``,
            ``"art"``, ``"cpi"``, ...).
        params: adapter parameters for that summary.
        card_kind: registry key of the calling-card sketch.
        card_params: adapter parameters for the card.
    """

    def __init__(
        self,
        kind: str = "bloom",
        params: Optional[Mapping[str, Any]] = None,
        card_kind: str = "minwise",
        card_params: Optional[Mapping[str, Any]] = None,
    ):
        # Fail fast on unknown kinds (same error surface as the registry).
        summary_class(kind)
        summary_class(card_kind)
        self.kind = kind
        self.params: Tuple[Tuple[str, Any], ...] = _freeze(params)
        self.card_kind = card_kind
        self.card_params: Tuple[Tuple[str, Any], ...] = _freeze(card_params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SummaryPolicy(kind={self.kind!r}, params={dict(self.params)!r}, "
            f"card_kind={self.card_kind!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SummaryPolicy):
            return NotImplemented
        return (
            self.kind,
            self.params,
            self.card_kind,
            self.card_params,
        ) == (other.kind, other.params, other.card_kind, other.card_params)

    def __hash__(self) -> int:
        return hash((self.kind, self.params, self.card_kind, self.card_params))

    # -- construction -------------------------------------------------------

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def build(self, ids: Iterable[int]) -> Summary:
        """The reconciliation summary of ``ids`` under this policy."""
        return build_summary(self.kind, ids, **dict(self.params))

    def build_card(self, ids: Iterable[int]) -> Summary:
        """The calling-card sketch of ``ids`` under this policy."""
        return build_summary(self.card_kind, ids, **dict(self.card_params))

    # -- capability probes ---------------------------------------------------

    @property
    def can_filter(self) -> bool:
        """Whether the policy's summary supports difference search."""
        return summary_class(self.kind).supports_difference

    @property
    def can_estimate(self) -> bool:
        """Whether the policy's summary supports difference estimation."""
        return summary_class(self.kind).supports_estimate

    # -- reconciliation ------------------------------------------------------

    def useful_subset(
        self, remote: Summary, candidates: Iterable[int]
    ) -> List[int]:
        """Candidate ids the remote (summarised) peer definitely lacks.

        The sender-side primitive behind every informed strategy:
        everything returned is guaranteed useful to the summariser
        (false positives only *hide* useful ids, never invent useless
        ones).
        """
        return remote.missing_from(candidates)

    def correlation(self, remote: Summary, local_ids: Iterable[int]) -> float:
        """Estimated ``|L ∩ R| / |L|`` for a local set against a summary.

        Uses the remote summary's difference search when it is
        authoritative for the whole key space (counting local ids it
        does *not* lack); otherwise builds a *comparable* local summary
        — the remote's own agreement parameters, via
        :meth:`~repro.reconcile.base.Summary.compatible_build_params` —
        and derives the intersection from the symmetric-difference
        estimate.  The result is the degree-shift knob of Recode/MW and
        the admission-control signal of §4.
        """
        local = list(dict.fromkeys(local_ids))
        if not local:
            return 0.0
        if remote.supports_difference and not remote.partial_coverage:
            from repro.exact.cpi import DiscrepancyExceeded

            try:
                missing = len(remote.missing_from(local))
            except DiscrepancyExceeded:
                # Bound exceeded: the sets differ more than the sketch
                # was sized for — low overlap is the honest reading.
                return 0.0
            return min(1.0, max(0.0, (len(local) - missing) / len(local)))
        if not remote.supports_estimate:
            raise SummaryError(
                f"{remote.kind} summaries support neither difference search "
                "nor estimation; no correlation signal is available"
            )
        mine = build_summary(remote.kind, local, **remote.compatible_build_params())
        return correlation_from_summaries(mine, remote, len(local))


#: The stack's historical behaviour: min-wise calling cards (the 1KB
#: 128-permutation card) and 8-bits-per-element Bloom reconciliation.
DEFAULT_POLICY = SummaryPolicy(
    kind="bloom",
    params={"bits_per_element": 8},
    card_kind="minwise",
    card_params={"entries": 128},
)


__all__ = ["SummaryPolicy", "DEFAULT_POLICY", "correlation_from_summaries"]
