"""String-keyed registry of :class:`~repro.reconcile.base.Summary` adapters.

Mirrors the scenario registry in :mod:`repro.api.registry`: adapters
register under a stable kind name with the :func:`register_summary`
decorator; callers build summaries by name (``build_summary("bloom",
ids, bits_per_element=8)``) or reconstruct them from wire payloads
(:func:`summary_from_payload` dispatches on ``payload["kind"]``).
"""

from typing import Any, Dict, Iterable, List, Type

from repro.reconcile.base import Summary, SummaryError

_REGISTRY: Dict[str, Type[Summary]] = {}


class UnknownSummaryError(KeyError):
    """Lookup of a summary kind nothing registered."""

    def __init__(self, kind: str, known: List[str]):
        super().__init__(kind)
        self.kind = kind
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown summary kind {self.kind!r}; registered kinds: "
            f"{', '.join(self.known) or '(none)'}"
        )


def register_summary(cls: Type[Summary]) -> Type[Summary]:
    """Class decorator registering an adapter under its ``kind``."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must set a non-empty 'kind'")
    if cls.kind in _REGISTRY:
        raise ValueError(f"summary kind {cls.kind!r} is already registered")
    _REGISTRY[cls.kind] = cls
    return cls


def summary_class(kind: str) -> Type[Summary]:
    """The adapter class for ``kind`` (:class:`UnknownSummaryError` if absent)."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise UnknownSummaryError(kind, summary_kinds()) from None


def summary_kinds() -> List[str]:
    """Registered kind names, sorted."""
    return sorted(_REGISTRY)


def build_summary(kind: str, ids: Iterable[int], **params: Any) -> Summary:
    """Build a summary of ``ids`` by kind name.

    Adapter-specific ``params`` pass through to the adapter's
    ``build``; unknown parameters fold into :class:`SummaryError` so
    spec-driven callers fail with one exception type.
    """
    cls = summary_class(kind)
    try:
        return cls.build(ids, **params)
    except SummaryError:
        raise
    except (TypeError, ValueError) as exc:
        # Unknown parameter names (TypeError) and out-of-range values the
        # underlying structure rejects (ValueError) surface as one type.
        raise SummaryError(f"invalid parameters for {kind!r} summary: {exc}") from exc


def summary_from_payload(payload: Dict[str, Any]) -> Summary:
    """Reconstruct any registered summary from its wire payload."""
    if not isinstance(payload, dict):
        raise SummaryError("summary payload must be a JSON object")
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        raise SummaryError("summary payload is missing its 'kind' tag")
    return summary_class(kind).from_payload(payload)


__all__ = [
    "UnknownSummaryError",
    "register_summary",
    "summary_class",
    "summary_kinds",
    "build_summary",
    "summary_from_payload",
]
