"""Random-sampling similarity estimation (Section 4, first approach).

Peer A selects ``k`` elements of its working set uniformly at random (with
replacement) and ships their keys.  Peer B looks each key up in its own set:
the hit fraction is an unbiased estimate of ``|A_F ∩ B_F| / |A_F|`` — i.e.
how much of *A's* content B already holds.  (Symmetrically, B receiving the
sample estimates what fraction of A's symbols would be redundant to send.)

The paper notes two drawbacks that our API surfaces honestly: the receiver
must search its whole set (O(k) hash lookups here, the data-structure
maintenance the paper worries about being Python's built-in ``set``), and
samples from two *other* peers cannot be compared with each other.
"""

import random
from typing import Iterable, List, Optional, Sequence, Set

from repro.seeding import default_rng


class RandomSampleSketch:
    """A ``k``-element random sample of a working set, plus its size.

    Attributes:
        sample: the sampled keys (with replacement, so duplicates possible).
        set_size: ``|A_F|`` of the summarised set; the paper sends this
            optionally, and the containment conversions need it.
    """

    def __init__(self, sample: Sequence[int], set_size: int):
        if set_size < 0:
            raise ValueError("set size must be non-negative")
        if set_size == 0 and sample:
            raise ValueError("empty set cannot produce a non-empty sample")
        self.sample: List[int] = list(sample)
        self.set_size = set_size

    @classmethod
    def build(
        cls,
        working_set: Iterable[int],
        k: int,
        rng: Optional[random.Random] = None,
    ) -> "RandomSampleSketch":
        """Sample ``k`` keys (with replacement) from ``working_set``."""
        if k < 0:
            raise ValueError("sample size must be non-negative")
        rng = rng if rng is not None else default_rng("sketches.random_sample")
        pool = list(working_set)
        if not pool:
            return cls([], 0)
        return cls([rng.choice(pool) for _ in range(k)], len(pool))

    def __len__(self) -> int:
        return len(self.sample)

    def estimate_containment_in(self, other_set: Set[int]) -> float:
        """Fraction of the sampled set already present in ``other_set``.

        This is the unbiased estimate of ``|A ∩ B| / |A|`` where ``A`` is the
        sketched set and ``B`` is ``other_set``.  Raises if the sample is
        empty — an estimate from zero observations is meaningless and the
        paper's protocol never sends one.
        """
        if not self.sample:
            raise ValueError("cannot estimate from an empty sample")
        hits = sum(1 for key in self.sample if key in other_set)
        return hits / len(self.sample)

    def packet_size_bytes(self, key_bits: int = 64) -> int:
        """Wire size: keys plus a 4-byte set-size header (paper: ~1KB)."""
        return 4 + (key_bits // 8) * len(self.sample)
