"""Conversions between resemblance and containment estimates.

Notation follows Section 4 of the paper.  For working sets ``A`` and ``B``:

* resemblance ``r = |A ∩ B| / |A ∪ B|`` (what min-wise sketches estimate);
* containment ``c = |A ∩ B| / |B|`` (the fraction of B's symbols useless to
  A, i.e. the "correlation" axis of Figures 5-8).

Given ``|A|`` and ``|B|`` either determines the other via
``|A ∪ B| = |A| + |B| - |A ∩ B|`` (inclusion-exclusion).
"""


def intersection_from_resemblance(r: float, size_a: int, size_b: int) -> float:
    """Estimated ``|A ∩ B|`` from resemblance ``r`` and the two set sizes.

    From ``r = i / (|A| + |B| - i)`` solve ``i = r (|A| + |B|) / (1 + r)``.
    """
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"resemblance must lie in [0, 1], got {r}")
    if size_a < 0 or size_b < 0:
        raise ValueError("set sizes must be non-negative")
    return r * (size_a + size_b) / (1.0 + r)


def containment_from_resemblance(r: float, size_a: int, size_b: int) -> float:
    """Estimated containment ``|A ∩ B| / |B|`` from resemblance ``r``.

    Returns 0 for an empty ``B`` (nothing to contain).  The result is
    clamped to ``[0, 1]`` since sampling noise in ``r`` can push the raw
    algebra slightly outside.
    """
    if size_b == 0:
        return 0.0
    c = intersection_from_resemblance(r, size_a, size_b) / size_b
    return min(1.0, max(0.0, c))


def resemblance_from_containment(c: float, size_a: int, size_b: int) -> float:
    """Inverse conversion: resemblance from containment ``c = |A∩B|/|B|``."""
    if not 0.0 <= c <= 1.0:
        raise ValueError(f"containment must lie in [0, 1], got {c}")
    union = size_a + size_b - c * size_b
    if union <= 0:
        return 1.0 if (size_a or size_b) else 0.0
    r = c * size_b / union
    return min(1.0, max(0.0, r))
