"""Working-set similarity estimation (paper Section 4).

Three coarse-grained "calling card" techniques, each designed to fit in a
single 1KB control packet:

* :class:`RandomSampleSketch` — send ``k`` random elements; the peer counts
  how many it holds.  Estimates *containment* ``|A ∩ B| / |B|``.
* :class:`ModKSketch` — send every element whose key is ``0 mod k``;
  constant expected size, comparable sample-to-sample.  Estimates
  containment from the two samples alone.
* :class:`MinwiseSketch` — the preferred technique: per-permutation minima.
  Estimates *resemblance* ``|A ∩ B| / |A ∪ B|``, supports unions, and two
  sketches from third parties can be compared without either set.

:mod:`repro.sketches.estimate` converts between resemblance and containment
via inclusion-exclusion, as the paper notes is possible given set sizes.
"""

from repro.sketches.minwise import MinwiseSketch
from repro.sketches.modk import ModKSketch
from repro.sketches.random_sample import RandomSampleSketch
from repro.sketches.estimate import (
    containment_from_resemblance,
    intersection_from_resemblance,
    resemblance_from_containment,
)

__all__ = [
    "RandomSampleSketch",
    "ModKSketch",
    "MinwiseSketch",
    "containment_from_resemblance",
    "resemblance_from_containment",
    "intersection_from_resemblance",
]
