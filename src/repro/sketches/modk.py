"""Mod-k sampling similarity estimation (Section 4, second approach).

Sample the elements whose (random) key is ``0 mod k``.  Because both peers
apply the same rule, element ``x`` appears in A's sample iff it appears in
B's sample whenever both hold ``x`` — so all computation happens on the two
small samples, unlike plain random sampling.  ``|A_k ∩ B_k| / |B_k|`` is an
unbiased estimate of ``|A_F ∩ B_F| / |B_F|``.

The paper flags the practical wart that sample size is variable (binomial
around ``n/k``), which matters because packets have a maximum size; we
expose :meth:`ModKSketch.truncated` to model the clipping a real
implementation would apply.
"""

from typing import FrozenSet, Iterable

from repro.hashing.mix import mix64


class ModKSketch:
    """Deterministic sample ``{x in S : key(x) ≡ 0 (mod k)}``.

    Two sketches are comparable iff they used the same modulus and the same
    key-randomising seed.
    """

    def __init__(self, sample: Iterable[int], modulus: int, seed: int = 0):
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        self.sample: FrozenSet[int] = frozenset(sample)
        self.modulus = modulus
        self.seed = seed

    @classmethod
    def build(
        cls, working_set: Iterable[int], modulus: int, seed: int = 0
    ) -> "ModKSketch":
        """Select the elements whose randomised key is 0 mod ``modulus``.

        Keys are passed through :func:`~repro.hashing.mix.mix64` first, per
        the paper's standing assumption that keys are random.
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        sample = (x for x in working_set if mix64(x, seed) % modulus == 0)
        return cls(sample, modulus, seed)

    def __len__(self) -> int:
        return len(self.sample)

    def _check_comparable(self, other: "ModKSketch") -> None:
        if self.modulus != other.modulus or self.seed != other.seed:
            raise ValueError(
                "mod-k sketches are only comparable with identical modulus and seed"
            )

    def estimate_containment(self, other: "ModKSketch") -> float:
        """Estimate ``|A ∩ B| / |B|`` where ``self`` is A and ``other`` is B.

        Raises if B's sample is empty (no basis for an estimate).
        """
        self._check_comparable(other)
        if not other.sample:
            raise ValueError("cannot estimate containment against an empty sample")
        return len(self.sample & other.sample) / len(other.sample)

    def estimate_resemblance(self, other: "ModKSketch") -> float:
        """Estimate ``|A ∩ B| / |A ∪ B|`` from the two samples."""
        self._check_comparable(other)
        union = len(self.sample | other.sample)
        if union == 0:
            return 0.0
        return len(self.sample & other.sample) / union

    def truncated(self, max_elements: int) -> "ModKSketch":
        """Clip to the ``max_elements`` smallest sampled keys (packet limit).

        Keeping the *smallest* mixed keys on both sides preserves
        comparability (both peers clip the same deterministic order), which
        is exactly the trick that turns mod-k sampling into a bottom-k
        sketch.
        """
        if max_elements < 0:
            raise ValueError("max_elements must be non-negative")
        keep = sorted(self.sample, key=lambda x: mix64(x, self.seed))[:max_elements]
        return ModKSketch(keep, self.modulus, self.seed)

    def packet_size_bytes(self, key_bits: int = 64) -> int:
        """Wire size of the sample in bytes."""
        return 4 + (key_bits // 8) * len(self.sample)
