"""Min-wise sketches (Section 4, the paper's preferred approach).

For each permutation ``pi_j`` in a universally agreed family, a peer stores
``min_j = min over its working set of pi_j(x)``.  Two sketches match in
position ``j`` with probability exactly the resemblance
``r = |A ∩ B| / |A ∪ B|``, so the fraction of matching positions is an
unbiased estimator of ``r``.

Properties the paper relies on and this class implements:

* **Incremental update** (constant work per new symbol): :meth:`add`.
* **Union combination**: coordinate-wise minimum of two sketches is the
  sketch of the union, enabling three-party overlap checks
  (:meth:`union`).
* **1KB calling card**: 128 permutations x 64-bit minima ≈ 1KB
  (:meth:`packet_size_bytes`).
"""

from typing import Iterable, List, Optional

from repro.hashing.permutations import PermutationFamily

#: Sentinel stored before any element has been added.
_EMPTY = None


class MinwiseSketch:
    """Vector of per-permutation minima over a working set."""

    def __init__(self, family: PermutationFamily):
        self.family = family
        self._minima: List[Optional[int]] = [_EMPTY] * len(family)
        self._count = 0  # number of elements folded in (with multiplicity)

    @classmethod
    def build(
        cls, working_set: Iterable[int], family: PermutationFamily
    ) -> "MinwiseSketch":
        """Summarise ``working_set`` under ``family`` in one pass."""
        sketch = cls(family)
        for key in working_set:
            sketch.add(key)
        return sketch

    @classmethod
    def build_vectorized(
        cls, working_set: Iterable[int], family: PermutationFamily
    ) -> "MinwiseSketch":
        """Numpy-accelerated batch build (identical output to :meth:`build`).

        Delegates to :func:`repro.hashing.batch.permutation_minima` —
        the vectorised ``(a*x + b) mod u`` kernel shared with the
        reconcile adapters.  For the 1KB 128-permutation calling card
        over thousands of keys this is an order of magnitude faster
        than the scalar loop; prefer it when sketching from scratch,
        and :meth:`add` for incremental updates.
        """
        from repro.hashing.batch import permutation_minima

        key_list = list(working_set)
        sketch = cls(family)
        if not key_list:
            return sketch
        sketch._minima = permutation_minima(family, key_list)
        sketch._count = len(key_list)
        return sketch

    @classmethod
    def from_minima(
        cls,
        family: PermutationFamily,
        minima: Iterable[Optional[int]],
        count: int = 0,
    ) -> "MinwiseSketch":
        """Reconstruct a sketch received over the wire.

        The peer trusts that the remote built its vector under the same
        (universally agreed) family; length is checked, content cannot be.
        """
        sketch = cls(family)
        vector = list(minima)
        if len(vector) != len(family):
            raise ValueError(
                f"minima vector has {len(vector)} entries, family expects "
                f"{len(family)}"
            )
        sketch._minima = vector
        sketch._count = count
        return sketch

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def minima(self) -> List[Optional[int]]:
        """The raw vector ``v(A)`` that goes on the wire."""
        return list(self._minima)

    def absorb_vectorized(self, keys: Iterable[int]) -> "MinwiseSketch":
        """A new sketch with ``keys`` folded in, via the batch kernel.

        The incremental counterpart of :meth:`build_vectorized`: min is
        associative, so the coordinate-wise minimum of the current
        vector and the delta's :func:`~repro.hashing.batch.
        permutation_minima` equals a from-scratch build over the union —
        bit for bit, which the parity suites pin.  ``self`` is left
        untouched (handed-out references stay valid); cost is one batch
        pass over the delta instead of the whole working set.
        """
        from repro.hashing.batch import permutation_minima_fold

        key_list = list(keys)
        if not key_list:
            return self
        merged = MinwiseSketch(self.family)
        merged._minima = permutation_minima_fold(
            self.family, key_list, self._minima
        )
        merged._count = self._count + len(key_list)
        return merged

    def add(self, key: int) -> None:
        """Fold one new symbol into the sketch (incremental update).

        Cost is one linear map per permutation — the constant-overhead
        update the paper requires so estimation works while data arrives.
        """
        if not 0 <= key < self.family.universe_size:
            raise ValueError(
                f"key {key} outside universe [0, {self.family.universe_size})"
            )
        minima = self._minima
        for j, perm in enumerate(self.family):
            image = perm(key)
            current = minima[j]
            if current is None or image < current:
                minima[j] = image
        self._count += 1

    def _check_comparable(self, other: "MinwiseSketch") -> None:
        if not self.family.compatible_with(other.family):
            raise ValueError(
                "sketches built from different permutation families are "
                "not comparable; peers must agree on the family off-line"
            )

    def estimate_resemblance(self, other: "MinwiseSketch") -> float:
        """Fraction of matching positions — unbiased estimate of ``r``.

        Two empty sketches resemble completely vacuously; we return 0.0 for
        that case (no evidence of shared content) and raise if only one
        side is empty-but-compared, since a real protocol would not sketch
        an empty working set.
        """
        self._check_comparable(other)
        if self.is_empty and other.is_empty:
            return 0.0
        matches = sum(
            1
            for mine, theirs in zip(self._minima, other._minima)
            if mine is not None and mine == theirs
        )
        return matches / len(self._minima)

    def union(self, other: "MinwiseSketch") -> "MinwiseSketch":
        """Sketch of ``A ∪ B`` — coordinate-wise minimum (paper, Section 4).

        This is what lets a receiver estimate the *combined* coverage of two
        prospective senders from their calling cards alone.
        """
        self._check_comparable(other)
        merged = MinwiseSketch(self.family)
        merged._count = self._count + other._count
        merged._minima = [
            theirs if mine is None else (mine if theirs is None else min(mine, theirs))
            for mine, theirs in zip(self._minima, other._minima)
        ]
        return merged

    def packet_size_bytes(self, entry_bits: int = 64) -> int:
        """Wire size of the minima vector (128 perms x 64 bits ≈ 1KB)."""
        return (entry_bits // 8) * len(self._minima)

    def __len__(self) -> int:
        return len(self._minima)
