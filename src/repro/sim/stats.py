"""Time-series statistics capture for event-driven simulations.

A :class:`StatsRecorder` is shared by every entity in a simulation
(nodes, connections, scenario processes) and captures two kinds of
signal keyed by ``(entity, metric)``:

* **counters** (:meth:`count`) — monotone totals such as packets sent
  or lost, bucketed in time so per-bucket rates fall out of the series;
* **gauges** (:meth:`gauge`) — instantaneous levels such as a node's
  working-set size, keeping the last value seen per bucket.

Buckets quantise the (continuous) event clock into a configurable
resolution — per-tick by default — so a million packet events stay a
few thousand samples.  ``series(entity, metric)`` returns sorted
``(bucket_time, value)`` pairs; counters also expose running totals.
"""

import math
from typing import Dict, List, Optional, Set, Tuple

Key = Tuple[str, str]


class StatsRecorder:
    """Per-entity/metric time series with time-bucketed storage.

    Args:
        resolution: bucket width in simulated time units.
    """

    def __init__(self, resolution: float = 1.0):
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self._counters: Dict[Key, Dict[float, float]] = {}
        self._gauges: Dict[Key, Dict[float, float]] = {}
        self._totals: Dict[Key, float] = {}

    # -- capture ------------------------------------------------------------

    def _bucket(self, time: float) -> float:
        return math.floor(time / self.resolution) * self.resolution

    def count(self, time: float, entity: str, metric: str, delta: float = 1.0) -> None:
        """Add ``delta`` to a counter at ``time``."""
        key = (entity, metric)
        buckets = self._counters.setdefault(key, {})
        b = self._bucket(time)
        buckets[b] = buckets.get(b, 0.0) + delta
        self._totals[key] = self._totals.get(key, 0.0) + delta

    def gauge(self, time: float, entity: str, metric: str, value: float) -> None:
        """Record an instantaneous level at ``time`` (last-wins per bucket)."""
        self._gauges.setdefault((entity, metric), {})[self._bucket(time)] = value

    # -- queries ------------------------------------------------------------

    def total(self, entity: str, metric: str) -> float:
        """Running total of a counter (0 if never counted)."""
        return self._totals.get((entity, metric), 0.0)

    def series(self, entity: str, metric: str) -> List[Tuple[float, float]]:
        """Sorted ``(bucket_time, value)`` samples for one signal.

        Counters report per-bucket increments; gauges report the last
        level seen in each bucket.
        """
        key = (entity, metric)
        data = self._counters.get(key) or self._gauges.get(key) or {}
        return sorted(data.items())

    def cumulative_series(self, entity: str, metric: str) -> List[Tuple[float, float]]:
        """Counter series as a running total over time."""
        running, out = 0.0, []
        for t, v in self.series(entity, metric):
            running += v
            out.append((t, running))
        return out

    def last(self, entity: str, metric: str) -> Optional[float]:
        """Latest gauge level (or latest counter bucket), if any."""
        samples = self.series(entity, metric)
        return samples[-1][1] if samples else None

    def entities(self) -> Set[str]:
        """Every entity that has recorded at least one sample."""
        return {e for e, _ in self._counters} | {e for e, _ in self._gauges}

    def metrics_of(self, entity: str) -> Set[str]:
        return {m for e, m in self._counters if e == entity} | {
            m for e, m in self._gauges if e == entity
        }

    def to_rows(self) -> List[Tuple[str, str, float, float]]:
        """Flatten everything to ``(entity, metric, time, value)`` rows."""
        rows: List[Tuple[str, str, float, float]] = []
        for (e, m), buckets in list(self._counters.items()) + list(
            self._gauges.items()
        ):
            rows.extend((e, m, t, v) for t, v in sorted(buckets.items()))
        rows.sort(key=lambda r: (r[0], r[1], r[2]))
        return rows
