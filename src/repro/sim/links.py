"""Pluggable per-connection link models for the event engine.

A :class:`LinkModel` answers two questions for the simulator:

* :meth:`~LinkModel.packet_budget` — how many whole packets fit in a
  time window, with fractional capacity carried as credit between
  windows (never negative, floored with an epsilon so ten windows of
  0.1 pkt really yield one packet);
* :meth:`~LinkModel.transmit` — per packet, is it lost, and if not,
  after what propagation delay does it arrive.

Models:

* :class:`ConstantRateLink` — fixed rate, Bernoulli loss, fixed
  latency.  With zero latency this is exactly the legacy tick
  simulator's connection behaviour (one RNG draw per packet).
* :class:`LatencyJitterLink` — constant rate plus uniform jitter
  around a base propagation delay.
* :class:`GilbertElliottLink` — two-state Markov (good/bad) bursty
  loss; chains may be shared across links to model correlated loss
  (e.g. a congested inter-region trunk).
* :class:`TraceBandwidthLink` — piecewise-constant bandwidth replayed
  from a trace, in the style of trace-driven network simulators.
"""

import bisect
import math
import random
from typing import Optional, Sequence

#: Floor tolerance for fractional-credit accumulation: absorbs binary
#: float representation error (0.1 summed ten times) without ever
#: minting a packet more than 1e-9 early.
CREDIT_EPS = 1e-9


def drain_credit(credit: float, capacity: float) -> "tuple[int, float]":
    """Add ``capacity`` to ``credit`` and split off whole packets.

    The one fractional-bandwidth rule everywhere: credit is clamped at
    zero (a stalled window never charges the future) and floored with
    :data:`CREDIT_EPS` so the packet sequence is exactly periodic for
    rational rates.  Returns ``(whole_packets, remaining_credit)``.
    """
    credit += capacity
    if credit < 0.0:
        credit = 0.0
    whole = int(math.floor(credit + CREDIT_EPS))
    return whole, max(0.0, credit - whole)


class LinkModel:
    """Base class: capacity and loss/latency behaviour of one link."""

    def __init__(self, latency: float = 0.0):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency
        self._credit = 0.0

    # -- capacity -----------------------------------------------------------

    def capacity_between(self, t0: float, t1: float) -> float:
        """Fractional packet capacity of the window ``[t0, t1)``."""
        raise NotImplementedError

    def packet_budget(self, t0: float, t1: float) -> int:
        """Whole packets transmittable in ``[t0, t1)``, carrying credit.

        Credit is clamped at zero (a stalled or degraded window can
        never charge the future) and floored with :data:`CREDIT_EPS`
        so the sequence is exactly periodic for rational rates.
        """
        if t1 < t0:
            raise ValueError("window must run forward")
        whole, self._credit = drain_credit(
            self._credit, self.capacity_between(t0, t1)
        )
        return whole

    # -- per-packet fate ----------------------------------------------------

    def transmit(self, rng: random.Random) -> Optional[float]:
        """Fate of one packet: None if lost, else its arrival delay.

        Implementations must draw from ``rng`` a deterministic number
        of times per call so seeded runs replay exactly.
        """
        raise NotImplementedError


class ConstantRateLink(LinkModel):
    """Fixed rate, independent Bernoulli loss, fixed propagation delay."""

    def __init__(self, rate: float, loss_rate: float = 0.0, latency: float = 0.0):
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must lie in [0, 1)")
        super().__init__(latency)
        self.rate = rate
        self.loss_rate = loss_rate

    def capacity_between(self, t0: float, t1: float) -> float:
        return self.rate * (t1 - t0)

    def transmit(self, rng: random.Random) -> Optional[float]:
        # Always one draw, even at loss_rate 0 — tick-parity depends on
        # the legacy simulator's RNG consumption pattern.
        if rng.random() < self.loss_rate:
            return None
        return self.latency


class LatencyJitterLink(ConstantRateLink):
    """Constant rate with uniform jitter around the base latency.

    Arrival delay is ``latency + U(-jitter, +jitter)`` clamped to zero;
    out-of-order arrival is possible (and intended) when jitter exceeds
    the packet spacing.
    """

    def __init__(
        self,
        rate: float,
        latency: float,
        jitter: float,
        loss_rate: float = 0.0,
    ):
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        super().__init__(rate, loss_rate, latency)
        self.jitter = jitter

    def transmit(self, rng: random.Random) -> Optional[float]:
        if rng.random() < self.loss_rate:
            return None
        if self.jitter == 0.0:
            return self.latency
        return max(0.0, self.latency + rng.uniform(-self.jitter, self.jitter))


class GilbertElliottProcess:
    """The two-state loss chain behind Gilbert-Elliott links.

    A chain may be owned by one link (stepped per packet) or shared by
    many (stepped by a scheduled event), in which case every sharing
    link sees the same good/bad phase — correlated regional loss.
    """

    def __init__(
        self,
        p_good_bad: float,
        p_bad_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
        start_bad: bool = False,
    ):
        for name, p in (("p_good_bad", p_good_bad), ("p_bad_good", p_bad_good)):
            if not 0.0 < p <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1]")
        for name, p in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        self.p_good_bad = p_good_bad
        self.p_bad_good = p_bad_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = start_bad
        # Burst bookkeeping: step counts, completed bad bursts, and the
        # running length of the burst in progress.  Observation only —
        # attaching stats never changes the chain's RNG draws.
        self.steps = 0
        self.bad_steps = 0
        self.bursts = 0
        self.burst_steps_total = 0
        self.longest_burst = 0
        self._burst_len = 0
        self._stats = None
        self._stats_entity = "loss"
        self._clock = None

    def attach_stats(self, stats, entity: str = "loss", clock=None) -> None:
        """Record the chain's state and realized bursts as stats series.

        Each step emits a ``bad_state`` gauge (1.0 in the bad phase);
        each completed bad burst emits its length as a ``burst_length``
        gauge.  ``clock`` (anything with ``.now``) timestamps the
        series; without one, the step counter is the time axis.
        """
        self._stats = stats
        self._stats_entity = entity
        self._clock = clock

    def _stats_now(self) -> float:
        return float(self.steps) if self._clock is None else self._clock.now

    def step(self, rng: random.Random) -> None:
        """Advance the chain one transition."""
        self.steps += 1
        was_bad = self.bad
        if self.bad:
            if rng.random() < self.p_bad_good:
                self.bad = False
        elif rng.random() < self.p_good_bad:
            self.bad = True
        if self.bad:
            self.bad_steps += 1
            self._burst_len += 1
        elif was_bad:
            self._end_burst()
        if self._stats is not None:
            self._stats.gauge(
                self._stats_now(),
                self._stats_entity,
                "bad_state",
                1.0 if self.bad else 0.0,
            )

    def _end_burst(self) -> None:
        length = self._burst_len
        self._burst_len = 0
        if length <= 0:
            return
        self.bursts += 1
        self.burst_steps_total += length
        self.longest_burst = max(self.longest_burst, length)
        if self._stats is not None:
            self._stats.gauge(
                self._stats_now(), self._stats_entity, "burst_length", float(length)
            )

    @property
    def current_loss_rate(self) -> float:
        return self.loss_bad if self.bad else self.loss_good

    @property
    def mean_burst_length(self) -> float:
        """Mean completed-burst length; approaches 1/p_bad_good."""
        return self.burst_steps_total / self.bursts if self.bursts else 0.0

    @property
    def empirical_loss_rate(self) -> float:
        """Realized long-run loss mixture over the stepped history."""
        if not self.steps:
            return self.current_loss_rate
        frac_bad = self.bad_steps / self.steps
        return frac_bad * self.loss_bad + (1.0 - frac_bad) * self.loss_good

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run loss rate: the chain's stationary mixture."""
        pi_bad = self.p_good_bad / (self.p_good_bad + self.p_bad_good)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good


class GilbertElliottLink(LinkModel):
    """Constant-rate link with bursty (Gilbert-Elliott) loss.

    Args:
        rate: packets per time unit.
        process: an existing chain to share; when None a private chain
            is built from the ``p_*``/``loss_*`` arguments and stepped
            once per packet.
        step_per_packet: step the chain on each transmit (private-chain
            default).  Pass False for shared chains stepped externally.
    """

    def __init__(
        self,
        rate: float,
        p_good_bad: float = 0.05,
        p_bad_good: float = 0.3,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
        latency: float = 0.0,
        process: Optional[GilbertElliottProcess] = None,
        step_per_packet: Optional[bool] = None,
    ):
        if rate < 0:
            raise ValueError("rate must be non-negative")
        super().__init__(latency)
        self.rate = rate
        if process is None:
            process = GilbertElliottProcess(
                p_good_bad, p_bad_good, loss_good, loss_bad
            )
            if step_per_packet is None:
                step_per_packet = True
        elif step_per_packet is None:
            step_per_packet = False
        self.process = process
        self.step_per_packet = step_per_packet

    def capacity_between(self, t0: float, t1: float) -> float:
        return self.rate * (t1 - t0)

    @property
    def stationary_loss_rate(self) -> float:
        return self.process.stationary_loss_rate

    def transmit(self, rng: random.Random) -> Optional[float]:
        if self.step_per_packet:
            self.process.step(rng)
        if rng.random() < self.process.current_loss_rate:
            return None
        return self.latency


class TraceBandwidthLink(LinkModel):
    """Bandwidth replayed from a piecewise-constant trace.

    Args:
        times: ascending breakpoints; ``rates[i]`` holds on
            ``[times[i], times[i+1])`` and ``rates[-1]`` forever after
            the last breakpoint.  Before ``times[0]`` the rate is
            ``rates[0]``.
        rates: packets per time unit per segment.
    """

    def __init__(
        self,
        times: Sequence[float],
        rates: Sequence[float],
        loss_rate: float = 0.0,
        latency: float = 0.0,
    ):
        if len(times) != len(rates) or not times:
            raise ValueError("times and rates must be equal-length and non-empty")
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise ValueError("trace times must be strictly ascending")
        if any(r < 0 for r in rates):
            raise ValueError("trace rates must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must lie in [0, 1)")
        super().__init__(latency)
        self.times = list(times)
        self.rates = list(rates)
        self.loss_rate = loss_rate

    def rate_at(self, t: float) -> float:
        """Trace rate in force at time ``t``."""
        idx = bisect.bisect_right(self.times, t) - 1
        return self.rates[max(0, idx)]

    def capacity_between(self, t0: float, t1: float) -> float:
        """Integral of the trace over ``[t0, t1)``."""
        total = 0.0
        cursor = t0
        while cursor < t1:
            idx = bisect.bisect_right(self.times, cursor) - 1
            seg_rate = self.rates[max(0, idx)]
            seg_end = self.times[idx + 1] if 0 <= idx + 1 < len(self.times) else t1
            upto = min(t1, seg_end if seg_end > cursor else t1)
            total += seg_rate * (upto - cursor)
            cursor = upto
        return total

    def transmit(self, rng: random.Random) -> Optional[float]:
        if rng.random() < self.loss_rate:
            return None
        return self.latency
