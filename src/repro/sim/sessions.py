"""Protocol sessions under the event clock.

:class:`~repro.protocol.session.TransferSession` runs the full
informed-delivery protocol (handshake, summaries, recoded streaming)
but is time-free: ``run()`` loops as fast as Python allows.  A
:class:`ScheduledSession` places that same protocol on a shared
:class:`~repro.sim.engine.EventScheduler`, pacing data packets by a
:class:`~repro.sim.links.LinkModel`'s capacity so sessions, overlay
simulations, and scenario events advance on one clock and can be
compared in simulated time.

The protocol stream itself stays reliable — a digital fountain never
retransmits specific bytes; fresh encoded symbols substitute for lost
ones, as in the paper's prototype — but the *sending rate* need not be
open-loop.  With a :class:`~repro.transport.controller.
TransportController` installed, each pump window is additionally
capped by the controller's congestion window and pacing rate, and
every packet's fate is drawn from the link model: a delivered packet's
ack returns after the round trip (feeding the RTT and bandwidth
estimators), a lost or queue-dropped packet's missing ack becomes an
rtx timeout and an ``on_loss`` signal.  Without a controller the
historical behaviour is bit-identical: the link model contributes only
*pacing* — a 2 pkt/tick session finishes in half the simulated time of
a 1 pkt/tick one, handshakes cost one propagation delay, and a
:class:`~repro.sim.stats.StatsRecorder` can capture the receiver's
progress as a time series.
"""

import random
from typing import List, Optional

from repro.protocol.session import TransferSession
from repro.sim.engine import EventScheduler
from repro.sim.links import LinkModel
from repro.sim.stats import StatsRecorder
from repro.transport.controller import TransportController

#: Default data-packet budget, in multiples of the receiver's recovery
#: target.  Spec-addressable: session scenarios derive their cap from
#: ``MeasurementSpec.max_packets`` when set, and from the
#: ``packet_budget_factor`` scenario param (times the target) when not
#: — this constant is only the last-resort default for hand-built
#: sessions.
DEFAULT_PACKET_BUDGET_FACTOR = 40


class ScheduledSession:
    """One protocol session paced by a link model on a shared clock.

    Args:
        scheduler: the shared event clock.
        session: the protocol session to drive (its ``clock`` is bound
            to the scheduler so its stats carry timestamps).
        link: capacity/latency model pacing the data stream.
        name: entity name for the stats recorder.
        stats: optional recorder capturing the receiver's symbol count
            and per-tick packet counts.
        max_packets: data-packet budget (default:
            :data:`DEFAULT_PACKET_BUDGET_FACTOR` × recovery target).
        transport: optional congestion controller gating each pump
            window; requires ``rng`` (packet fates are drawn from the
            link model).  ``None`` keeps the historical open-loop
            pacing bit-identically.
        rng: randomness source for per-packet link fates under
            ``transport``.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        session: TransferSession,
        link: LinkModel,
        name: str = "session",
        stats: Optional[StatsRecorder] = None,
        max_packets: Optional[int] = None,
        transport: Optional[TransportController] = None,
        rng: Optional[random.Random] = None,
    ):
        if transport is not None and rng is None:
            raise ValueError(
                "a transport-gated session needs an rng for link fates"
            )
        self.scheduler = scheduler
        self.session = session
        session.clock = scheduler
        self.link = link
        self.name = name
        self.stats = stats
        target = session.receiver.params.recovery_target
        self.max_packets = (
            max_packets
            if max_packets is not None
            else DEFAULT_PACKET_BUDGET_FACTOR * target
        )
        self.transport = transport
        self.rng = rng
        self.packets_sent = 0
        self.finished = False
        self.accepted: Optional[bool] = None
        self._last_pump: Optional[float] = None
        self._pump_handle = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, delay: float = 0.0) -> "ScheduledSession":
        """Schedule the handshake after ``delay`` (+ one link latency)."""
        self.scheduler.schedule(delay + self.link.latency, self._handshake)
        return self

    def _handshake(self) -> None:
        self.accepted = self.session.handshake()
        if not self.accepted:
            self._finish()
            return
        self._last_pump = self.scheduler.now
        self._pump_handle = self.scheduler.schedule_every(1.0, self._pump)

    def _pump(self):
        """One pacing window: send as many packets as the link affords.

        Each packet is one :meth:`TransferSession.stream_step` — the
        same streaming bookkeeping ``run()`` uses, just rationed by the
        link's capacity (and, under a transport controller, by cwnd and
        pacing) instead of a tight loop.
        """
        if self.finished:
            return False
        now = self.scheduler.now
        assert self._last_pump is not None
        budget = self.link.packet_budget(self._last_pump, now)
        ctrl = self.transport
        if ctrl is not None:
            budget = ctrl.allowance(now, budget, window=now - self._last_pump)
        self._last_pump = now
        receiver = self.session.receiver
        sent_this_pump = 0
        for _ in range(budget):
            if self.packets_sent >= self.max_packets:
                break
            if not self.session.stream_step():
                break  # decoded, or the sender genuinely drained
            self.packets_sent += 1
            sent_this_pump += 1
            if ctrl is not None:
                self._transport_step(ctrl, now)
            if self.stats is not None:
                self.stats.count(now, self.name, "packets")
                self.stats.gauge(
                    now, self.name, "symbols", len(receiver.working_set)
                )
        if self._done() or self.packets_sent >= self.max_packets or (
            budget > 0 and sent_this_pump == 0
        ):
            self._finish()
            return False
        return None

    def _transport_step(self, ctrl: TransportController, now: float) -> None:
        """Feed one packet's wire fate to the congestion controller.

        The stream stays reliable (the symbol was already delivered by
        ``stream_step``); the link draw decides only what the *sender
        learns*: an ack after the round trip, or — for a wire loss or
        queue drop — nothing, until the rtx timeout turns the silence
        into an ``on_loss`` back-off signal.
        """
        seq = ctrl.on_send(now)
        assert self.rng is not None
        fate = self.link.transmit(self.rng)
        if fate is None:
            return
        ack_delay = fate + self.link.latency
        if ack_delay <= 0.0:
            ctrl.on_ack(now, seq)
        else:
            self.scheduler.schedule(
                ack_delay,
                lambda: ctrl.on_ack(self.scheduler.now, seq),
            )

    def _done(self) -> bool:
        return self.session.receiver.has_decoded

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        stats = self.session.stats
        stats.completed = self._done()
        stats.finished_at = self.scheduler.now
        if self._pump_handle is not None:
            self._pump_handle.cancel()

    # -- results ------------------------------------------------------------

    @property
    def duration(self) -> Optional[float]:
        return self.session.stats.duration


def run_sessions(
    scheduler: EventScheduler,
    sessions: List[ScheduledSession],
    max_time: float = 100_000.0,
) -> List[ScheduledSession]:
    """Drive scheduled sessions until all finish (or the clock cap hits)."""
    scheduler.run(
        until=max_time, stop_when=lambda: all(s.finished for s in sessions)
    )
    return sessions
