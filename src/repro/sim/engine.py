"""Discrete-event simulation engine: a heap-scheduled clock.

The engine is a priority queue of timestamped callbacks plus a
monotonically advancing simulated clock.  Everything the simulation
does — a connection's per-tick delivery, a latency-delayed packet
arrival, a flash-crowd join wave, a periodic reconfiguration pass —
is an event on one shared heap, so heterogeneous processes compose
without a global lock-step.

Determinism: events at equal times run in scheduling (FIFO) order via a
monotone sequence number, so a seeded run replays exactly.  The legacy
tick loop is recovered as a single periodic event at integer times
(see :class:`repro.overlay.simulator.OverlaySimulator`), which is why
the tick-parity regression in ``tests/sim/test_parity.py`` holds bit
for bit.
"""

import heapq
import itertools
from typing import Any, Callable, List, Optional


class EventHandle:
    """A scheduled event; keep it to :meth:`cancel` before it fires."""

    __slots__ = ("time", "seq", "callback", "interval", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        interval: Optional[float] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.interval = interval  # None for one-shot events
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event (and, for periodic events, all repeats)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = f"every {self.interval}" if self.interval else "once"
        state = " cancelled" if self.cancelled else ""
        return f"EventHandle(t={self.time}, {kind}{state})"


class EventScheduler:
    """A simulated clock with a heap of pending events.

    Args:
        start: initial clock reading.

    Attributes:
        now: current simulated time; only advances.
        events_processed: callbacks executed so far (cancellations
            excluded) — the benchmark's throughput denominator.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self.events_processed = 0
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()

    # -- scheduling ---------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` when the clock reaches ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        handle = EventHandle(time, next(self._seq), callback)
        heapq.heappush(self._heap, handle)
        return handle

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.now + delay, callback)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], Any],
        first: Optional[float] = None,
    ) -> EventHandle:
        """Run ``callback`` periodically; first firing at ``first``.

        The callback may return ``False`` (the literal) to stop the
        series; cancelling the returned handle also stops it.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        time = self.now + interval if first is None else first
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        handle = EventHandle(time, next(self._seq), callback, interval=interval)
        heapq.heappush(self._heap, handle)
        return handle

    # -- execution ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Live events still on the heap."""
        return sum(1 for h in self._heap if not h.cancelled)

    @property
    def pending_oneshot(self) -> int:
        """Live one-shot events still on the heap.

        Periodic events (ticks, trunk steppers) recur forever and say
        nothing about outstanding work; one-shot events are scheduled
        *work* — in-flight packet arrivals, scenario disturbances —
        that a completion check must not ignore.
        """
        return sum(
            1 for h in self._heap if not h.cancelled and h.interval is None
        )

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event; False if nothing is pending."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = handle.time
            result = handle.callback()
            self.events_processed += 1
            if handle.interval is not None and not handle.cancelled and result is not False:
                handle.time += handle.interval
                handle.seq = next(self._seq)
                heapq.heappush(self._heap, handle)
            return True
        return False

    def run_until(self, time: float) -> int:
        """Execute every event with timestamp <= ``time``; returns count.

        The clock ends exactly at ``time`` even if the last event fired
        earlier (or none were pending).
        """
        if time < self.now:
            raise ValueError(f"cannot run backwards to {time} < now {self.now}")
        executed = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > time:
                break
            self.step()
            executed += 1
        self.now = time
        return executed

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Drain the heap subject to optional time/event/predicate caps.

        The clock only advances to ``until`` when the run exhausts the
        window (no live event left inside it); an early stop via
        ``stop_when`` or ``max_events`` leaves ``now`` at the last
        executed event so callers can read the true stopping time.
        """
        executed = 0
        exhausted = False
        while True:
            if stop_when is not None and stop_when():
                break
            if max_events is not None and executed >= max_events:
                break
            nxt = self.peek_time()
            if nxt is None or (until is not None and nxt > until):
                exhausted = True
                break
            self.step()
            executed += 1
        if exhausted and until is not None and self.now < until:
            self.now = until
        return executed

    def clear(self) -> None:
        """Drop all pending events (the clock reading is kept)."""
        self._heap.clear()
