"""repro.sim — discrete-event simulation core.

The substrate under the overlay simulator (and every later scaling
layer): a heap-scheduled event clock, pluggable per-connection link
models, a time-series stats recorder, protocol sessions paced on the
shared clock, and a scenario catalog of adversarial workloads.

* :mod:`repro.sim.engine` — :class:`EventScheduler`: heap of
  timestamped callbacks, deterministic FIFO tie-breaking, periodic
  events (a legacy "tick" is just one of them).
* :mod:`repro.sim.links` — :class:`LinkModel` hierarchy: constant
  rate, latency + jitter, Gilbert-Elliott bursty loss (optionally a
  shared chain for correlated loss), and trace-driven bandwidth.
* :mod:`repro.sim.stats` — :class:`StatsRecorder`: per-entity/metric
  counters and gauges bucketed on the simulated clock.
* :mod:`repro.sim.sessions` — :class:`ScheduledSession`: the Section 6
  protocol sessions paced by link models on the shared clock.
* :mod:`repro.sim.scenarios` — the :class:`SimScenario` bundle plus
  deprecated constructor shims; the catalog itself now lives behind
  :mod:`repro.api` (flash crowd, source departure, asymmetric
  bandwidth, correlated regional loss).
"""

from repro.sim.engine import EventHandle, EventScheduler
from repro.sim.links import (
    ConstantRateLink,
    GilbertElliottLink,
    GilbertElliottProcess,
    LatencyJitterLink,
    LinkModel,
    TraceBandwidthLink,
)
from repro.sim.stats import StatsRecorder


def __getattr__(name):
    # Lazy re-exports: repro.sim.scenarios sits above the overlay layer
    # (its shims build overlay simulators), so importing it eagerly here
    # would cycle overlay -> sim -> scenarios -> overlay.
    if name in ("SimScenario", "SCENARIOS"):
        from repro.sim import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")

__all__ = [
    "EventHandle",
    "EventScheduler",
    "LinkModel",
    "ConstantRateLink",
    "LatencyJitterLink",
    "GilbertElliottLink",
    "GilbertElliottProcess",
    "TraceBandwidthLink",
    "StatsRecorder",
    "SimScenario",
    "SCENARIOS",
]
