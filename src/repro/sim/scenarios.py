"""Scenario library: canned event-driven workloads beyond Figure 1.

.. deprecated::
    The scenario constructors in this module are thin shims over the
    declarative experiment API.  New code should build specs and run
    them through one pipeline::

        from repro.api import specs, run

        result = run(specs.flash_crowd(num_peers=48, seed=11))

    The shims remain so existing callers (benchmarks, examples, older
    notebooks) keep working: each builds the equivalent
    :class:`~repro.api.ExperimentSpec`, interprets it through the
    registry, and returns the ready-to-run :class:`SimScenario` bundle
    exactly as before — the parity tests in
    ``tests/api/test_api_parity.py`` pin identical seeded outputs.

The catalog itself (flash crowd, source departure, asymmetric
bandwidth, correlated regional loss) now lives in
:mod:`repro.api.builders`.
"""

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.overlay.simulator import OverlaySimulator, SimulationReport
from repro.sim.stats import StatsRecorder


@dataclass
class SimScenario:
    """A ready-to-run scenario: simulator, recorder, and an event log."""

    name: str
    simulator: OverlaySimulator
    stats: StatsRecorder
    target: int
    events: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def run(self, max_ticks: int = 10_000) -> SimulationReport:
        return self.simulator.run(max_ticks=max_ticks)


def _deprecated_shim(name: str) -> None:
    warnings.warn(
        f"repro.sim.scenarios.{name}() is deprecated; build an "
        f"ExperimentSpec (repro.api.specs.{name}) and use repro.api.run()",
        DeprecationWarning,
        stacklevel=3,
    )


def flash_crowd(
    num_peers: int = 48,
    target: int = 100,
    initial_seeded: int = 4,
    waves: int = 4,
    wave_interval: int = 20,
    max_connections: int = 3,
    seed: int = 11,
    strategy_name: str = "Recode/BF",
) -> SimScenario:
    """Deprecated shim for :func:`repro.api.builders.flash_crowd`."""
    _deprecated_shim("flash_crowd")
    from repro.api import build, specs

    spec = specs.flash_crowd(
        num_peers=num_peers,
        target=target,
        initial_seeded=initial_seeded,
        waves=waves,
        wave_interval=wave_interval,
        max_connections=max_connections,
        seed=seed,
        strategy_name=strategy_name,
    )
    return build(spec).scenario


def source_departure(
    num_peers: int = 12,
    target: int = 120,
    depart_at: float = 10.0,
    seed: int = 23,
    strategy_name: str = "Recode/BF",
) -> SimScenario:
    """Deprecated shim for :func:`repro.api.builders.source_departure`."""
    _deprecated_shim("source_departure")
    from repro.api import build, specs

    spec = specs.source_departure(
        num_peers=num_peers,
        target=target,
        depart_at=depart_at,
        seed=seed,
        strategy_name=strategy_name,
    )
    return build(spec).scenario


def asymmetric_bandwidth_swarm(
    num_fast: int = 6,
    num_slow: int = 6,
    target: int = 100,
    fast_rate: float = 4.0,
    slow_rate: float = 0.7,
    slow_latency: float = 2.0,
    slow_jitter: float = 1.5,
    seed: int = 31,
    strategy_name: str = "Recode/BF",
) -> SimScenario:
    """Deprecated shim for :func:`repro.api.builders.asymmetric_bandwidth`."""
    _deprecated_shim("asymmetric_bandwidth_swarm")
    from repro.api import build, specs

    spec = specs.asymmetric_bandwidth(
        num_fast=num_fast,
        num_slow=num_slow,
        target=target,
        fast_rate=fast_rate,
        slow_rate=slow_rate,
        slow_latency=slow_latency,
        slow_jitter=slow_jitter,
        seed=seed,
        strategy_name=strategy_name,
    )
    return build(spec).scenario


def correlated_regional_loss(
    peers_per_region: int = 6,
    target: int = 100,
    intra_rate: float = 2.0,
    trunk_rate: float = 2.0,
    p_good_bad: float = 0.04,
    p_bad_good: float = 0.25,
    loss_bad: float = 0.6,
    seed: int = 48,
    strategy_name: str = "Recode/BF",
) -> SimScenario:
    """Deprecated shim for :func:`repro.api.builders.correlated_regional_loss`."""
    _deprecated_shim("correlated_regional_loss")
    from repro.api import build, specs

    spec = specs.correlated_regional_loss(
        peers_per_region=peers_per_region,
        target=target,
        intra_rate=intra_rate,
        trunk_rate=trunk_rate,
        p_good_bad=p_good_bad,
        p_bad_good=p_bad_good,
        loss_bad=loss_bad,
        seed=seed,
        strategy_name=strategy_name,
    )
    return build(spec).scenario


#: The scenario catalog, by name — what benchmarks and examples iterate.
SCENARIOS: Dict[str, Callable[..., SimScenario]] = {
    "flash_crowd": flash_crowd,
    "source_departure": source_departure,
    "asymmetric_bandwidth": asymmetric_bandwidth_swarm,
    "correlated_regional_loss": correlated_regional_loss,
}
