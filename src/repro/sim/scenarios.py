"""Scenario library: canned event-driven workloads beyond Figure 1.

Every scenario assembles an :class:`~repro.overlay.simulator.
OverlaySimulator` plus scheduled disturbance events on the shared
clock, and returns a :class:`SimScenario` bundle with a
:class:`~repro.sim.stats.StatsRecorder` already attached.  The catalog
stresses the paper's central claim — reconciliation-informed, recoded
transfers on *adaptive* overlays — under conditions the uniform tick
loop could not express:

* :func:`flash_crowd` — demand arrives in waves; each joiner runs the
  Section 4 join decision (:func:`repro.delivery.orchestrator.plan_join`)
  over live calling cards at its scheduled join time.
* :func:`source_departure` — the only source leaves mid-transfer; the
  swarm must finish from collectively held (time-invariant) content.
* :func:`asymmetric_bandwidth_swarm` — a fast backbone class and a
  slow, jittery edge class share one overlay (heterogeneous
  :class:`~repro.sim.links.LinkModel`s per connection).
* :func:`correlated_regional_loss` — two regions joined by a trunk
  whose Gilbert-Elliott loss chain is *shared* by every inter-region
  connection, so bursts hit them together.

Each function is seeded and cheap by default; benchmarks scale the
same constructors to hundreds of nodes.
"""

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.delivery.orchestrator import CandidateSender, plan_join
from repro.overlay.node import OverlayNode
from repro.overlay.reconfiguration import SketchAdmission, UtilityRewiring
from repro.overlay.scenarios import default_family
from repro.overlay.simulator import OverlaySimulator, SimulationReport
from repro.overlay.topology import PathCharacteristics, VirtualTopology
from repro.sim.links import (
    ConstantRateLink,
    GilbertElliottLink,
    GilbertElliottProcess,
    LatencyJitterLink,
    LinkModel,
)
from repro.sim.stats import StatsRecorder


@dataclass
class SimScenario:
    """A ready-to-run scenario: simulator, recorder, and an event log."""

    name: str
    simulator: OverlaySimulator
    stats: StatsRecorder
    target: int
    events: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def run(self, max_ticks: int = 10_000) -> SimulationReport:
        return self.simulator.run(max_ticks=max_ticks)


def _base_simulator(
    rng: random.Random,
    strategy_name: str,
    link_factory: Optional[Callable[..., LinkModel]] = None,
    reconfigure_every: int = 20,
) -> tuple:
    family = default_family()
    stats = StatsRecorder()
    sim = OverlaySimulator(
        VirtualTopology(),
        family,
        admission=SketchAdmission(family),
        rewiring=UtilityRewiring(family, rng=rng),
        strategy_name=strategy_name,
        reconfigure_every=reconfigure_every,
        rng=rng,
        link_factory=link_factory,
        stats=stats,
    )
    return sim, family, stats


def flash_crowd(
    num_peers: int = 48,
    target: int = 100,
    initial_seeded: int = 4,
    waves: int = 4,
    wave_interval: int = 20,
    max_connections: int = 3,
    seed: int = 11,
    strategy_name: str = "Recode/BF",
) -> SimScenario:
    """Waves of empty peers rush a small seeded swarm.

    At ``t = wave_interval * k`` a wave joins; every joiner gathers the
    live peers' calling cards and runs the orchestrator's full join
    decision (greedy max-coverage selection, replica grouping, demand
    split) *at its join event's simulated time*.  Joiners that find no
    useful peer fall back to the source; utility rewiring then spreads
    the load as working sets diverge.
    """
    if initial_seeded >= num_peers:
        raise ValueError("need at least one non-seeded peer")
    rng = random.Random(seed)
    sim, family, stats = _base_simulator(rng, strategy_name)
    scenario = SimScenario("flash_crowd", sim, stats, target)
    distinct = int(target * 1.2)

    sim.add_node(OverlayNode("src", target, is_source=True))
    for i in range(initial_seeded):
        ids = rng.sample(range(distinct), target // 2)
        name = f"seed{i}"
        sim.add_node(
            OverlayNode(name, target, initial_ids=ids, max_connections=max_connections)
        )
        sim.connect("src", name)

    joiners = [f"p{i}" for i in range(num_peers - initial_seeded)]
    per_wave = math.ceil(len(joiners) / waves)

    def make_wave(batch: List[str]) -> Callable[[], None]:
        def join_wave() -> None:
            now = sim.scheduler.now
            scenario.events.append(f"t={now:g} wave of {len(batch)} joins")
            for pid in batch:
                node = OverlayNode(pid, target, max_connections=max_connections)
                sim.add_node(node)
                candidates = [
                    CandidateSender(n.node_id, n.sketch(family), len(n.working_set))
                    for n in sim.nodes.values()
                    if not n.is_source
                    and n.node_id != pid
                    and len(n.working_set) > 0
                ]
                plan = plan_join(
                    node.sketch(family),
                    len(node.working_set),
                    candidates,
                    max_senders=max_connections,
                    symbols_desired=target,
                    rng=rng,
                    now=now,
                )
                scenario.extras.setdefault("join_plans", {})[pid] = plan
                connected = 0
                for sender_id in plan.selection.chosen:
                    if sim.connect(sender_id, pid):
                        connected += 1
                if connected == 0:
                    sim.connect("src", pid)

        return join_wave

    # Waves land mid-tick (t = k*interval + 0.5): unambiguously after
    # tick k's delivery pass and before tick k+1's, so joiners' first
    # packets flow on the next tick.
    for w in range(waves):
        batch = joiners[w * per_wave : (w + 1) * per_wave]
        if batch:
            sim.scheduler.schedule_at(
                (w + 1) * float(wave_interval) + 0.5, make_wave(batch)
            )
    return scenario


def source_departure(
    num_peers: int = 12,
    target: int = 120,
    depart_at: float = 10.0,
    seed: int = 23,
    strategy_name: str = "Recode/BF",
) -> SimScenario:
    """The only source leaves mid-transfer; the swarm finishes alone.

    Peers start with random halves of the (overprovisioned) symbol
    space, so their union covers the file: after the departure event
    removes the source, completion is only possible through
    peer-to-peer reconciliation — the paper's time-invariance argument
    (Section 2.3) made into a scenario.
    """
    rng = random.Random(seed)
    sim, family, stats = _base_simulator(rng, strategy_name, reconfigure_every=10)
    scenario = SimScenario("source_departure", sim, stats, target)
    distinct = int(target * 1.3)

    sim.add_node(OverlayNode("src", target, is_source=True))
    peer_ids = [f"p{i}" for i in range(num_peers)]
    for pid in peer_ids:
        ids = rng.sample(range(distinct), distinct // 2)
        sim.add_node(OverlayNode(pid, target, initial_ids=ids, max_connections=3))
        sim.connect("src", pid)
    # A sparse peer mesh so perpendicular capacity exists on day one.
    for i, pid in enumerate(peer_ids):
        sim.connect(peer_ids[(i + 1) % num_peers], pid)

    def depart() -> None:
        sim.remove_node("src")
        scenario.events.append(f"t={sim.scheduler.now:g} source departed")

    sim.scheduler.schedule_at(depart_at, depart)
    return scenario


def asymmetric_bandwidth_swarm(
    num_fast: int = 6,
    num_slow: int = 6,
    target: int = 100,
    fast_rate: float = 4.0,
    slow_rate: float = 0.7,
    slow_latency: float = 2.0,
    slow_jitter: float = 1.5,
    seed: int = 31,
    strategy_name: str = "Recode/BF",
) -> SimScenario:
    """A fast backbone class and a slow, jittery edge class in one swarm.

    Connections *from* backbone nodes (source included) run at
    ``fast_rate`` with no latency; connections from edge nodes crawl at
    ``slow_rate`` behind a jittered propagation delay, so their packets
    arrive between ticks, out of order, and sometimes after the
    receiver already finished — the heterogeneity the uniform tick loop
    hid.
    """
    rng = random.Random(seed)
    fast_class = {"src"} | {f"fast{i}" for i in range(num_fast)}

    def link_factory(
        chars: PathCharacteristics, sender_id: str, receiver_id: str
    ) -> LinkModel:
        if sender_id in fast_class:
            return ConstantRateLink(fast_rate, loss_rate=0.005)
        return LatencyJitterLink(
            slow_rate, latency=slow_latency, jitter=slow_jitter, loss_rate=0.02
        )

    sim, family, stats = _base_simulator(rng, strategy_name, link_factory)
    scenario = SimScenario("asymmetric_bandwidth", sim, stats, target)
    scenario.extras["fast_class"] = fast_class
    distinct = int(target * 1.2)

    sim.add_node(OverlayNode("src", target, is_source=True))
    for i in range(num_fast):
        ids = rng.sample(range(distinct), rng.randrange(0, target // 2))
        sim.add_node(OverlayNode(f"fast{i}", target, initial_ids=ids, max_connections=3))
        sim.connect("src", f"fast{i}")
    for i in range(num_slow):
        ids = rng.sample(range(distinct), rng.randrange(0, target // 3))
        sim.add_node(OverlayNode(f"slow{i}", target, initial_ids=ids, max_connections=3))
        # Edge peers bootstrap from the backbone when one exists.
        sim.connect(f"fast{i % num_fast}" if num_fast else "src", f"slow{i}")
    return scenario


def correlated_regional_loss(
    peers_per_region: int = 6,
    target: int = 100,
    intra_rate: float = 2.0,
    trunk_rate: float = 2.0,
    p_good_bad: float = 0.04,
    p_bad_good: float = 0.25,
    loss_bad: float = 0.6,
    seed: int = 48,
    strategy_name: str = "Recode/BF",
) -> SimScenario:
    """Two regions bridged by a trunk with shared bursty loss.

    All inter-region connections reference *one*
    :class:`GilbertElliottProcess`, stepped once per tick by a
    scheduled event — when the trunk enters its bad state, every
    cross-region connection suffers together (correlated regional
    loss), while intra-region links stay clean.  The source sits in
    region A; region B can only fill through the trunk or from its own
    slowly accumulating peers, so adaptation matters.
    """
    rng = random.Random(seed)
    trunk = GilbertElliottProcess(
        p_good_bad, p_bad_good, loss_good=0.0, loss_bad=loss_bad
    )
    region: Dict[str, str] = {"src": "A"}
    for i in range(peers_per_region):
        region[f"a{i}"] = "A"
        region[f"b{i}"] = "B"

    def link_factory(
        chars: PathCharacteristics, sender_id: str, receiver_id: str
    ) -> LinkModel:
        if region[sender_id] != region[receiver_id]:
            return GilbertElliottLink(trunk_rate, process=trunk, latency=1.0)
        return ConstantRateLink(intra_rate, loss_rate=0.005)

    sim, family, stats = _base_simulator(rng, strategy_name, link_factory)
    scenario = SimScenario("correlated_regional_loss", sim, stats, target)
    scenario.extras["trunk"] = trunk
    distinct = int(target * 1.2)

    sim.add_node(OverlayNode("src", target, is_source=True))
    for i in range(peers_per_region):
        a_ids = rng.sample(range(distinct), rng.randrange(0, target // 2))
        b_ids = rng.sample(range(distinct), rng.randrange(0, target // 2))
        sim.add_node(OverlayNode(f"a{i}", target, initial_ids=a_ids, max_connections=3))
        sim.add_node(OverlayNode(f"b{i}", target, initial_ids=b_ids, max_connections=3))
        sim.connect("src", f"a{i}")
    # Region B reaches content through the trunk initially.
    for i in range(peers_per_region):
        sim.connect("src" if i == 0 else f"a{i}", f"b{i}")
        if i > 0:
            sim.connect(f"b{i - 1}", f"b{i}")

    def step_trunk() -> None:
        was_bad = trunk.bad
        trunk.step(rng)
        if trunk.bad != was_bad:
            state = "bad" if trunk.bad else "good"
            scenario.events.append(f"t={sim.scheduler.now:g} trunk -> {state}")

    sim.scheduler.schedule_every(1.0, step_trunk, first=0.5)
    return scenario


#: The scenario catalog, by name — what benchmarks and examples iterate.
SCENARIOS: Dict[str, Callable[..., SimScenario]] = {
    "flash_crowd": flash_crowd,
    "source_departure": source_departure,
    "asymmetric_bandwidth": asymmetric_bandwidth_swarm,
    "correlated_regional_loss": correlated_regional_loss,
}
