"""Recoded-symbol generation (paper Section 5.4.2).

A partial sender blends encoded symbols it holds into *recoded* symbols:
``z = y_{i1} XOR ... XOR y_{id}`` with the constituent id list shipped in
the header.  Degree targeting follows the paper's representative
calculation: the probability that a degree-``d`` recoded symbol
immediately yields a new encoded symbol to a receiver that already holds a
fraction ``c`` of the sender's symbols is

    P(d) = C(cn, d-1) * (1-c)n / C(n, d)

which is maximised at ``d* = ceil((cn + 1) / (n (1 - c)))`` — growing with
correlation, exactly the paper's observation that "as recoded symbols are
received, correlation naturally increases and the target degree increases
accordingly".  Because the locally optimal degree risks fully redundant
symbols, the paper (and this implementation) uses ``d*`` as a *lower
limit* and draws degrees between it and the maximum allowable degree from
an irregular distribution.
"""

import math
import random
from typing import Iterable, List, Optional, Sequence

from repro.coding.degree import DegreeDistribution
from repro.coding.symbol import EncodedSymbol, RecodedSymbol, xor_payloads
from repro.seeding import default_rng

#: Paper Section 6.1: "The degree distribution for recoding was created
#: similarly with a degree limit of 50."
DEFAULT_MAX_RECODE_DEGREE = 50


def optimal_recode_degree(working_set_size: int, correlation: float) -> int:
    """``d*``, the immediately-useful-probability-maximising degree.

    Args:
        working_set_size: ``n = |B_F|``, the sender's symbol count.
        correlation: ``c = |A_F ∩ B_F| / |B_F|`` as estimated from a
            sketch (0 = disjoint, 1 = identical).
    """
    if working_set_size < 1:
        raise ValueError("sender must hold at least one symbol")
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must lie in [0, 1]")
    if correlation >= 1.0:
        # Identical sets: nothing is useful; return the largest degree so
        # callers blend maximally (matching the paper's high-c behaviour).
        return working_set_size
    n = working_set_size
    d = math.ceil((correlation * n + 1) / (n * (1.0 - correlation)))
    return max(1, min(d, n))


def immediate_usefulness_probability(
    working_set_size: int, correlation: float, degree: int
) -> float:
    """Exact ``P(d)`` from the paper's representative calculation."""
    n = working_set_size
    shared = round(correlation * n)
    fresh = n - shared
    if degree > n or degree < 1:
        return 0.0
    num = math.comb(shared, degree - 1) * fresh
    den = math.comb(n, degree)
    return num / den if den else 0.0


class Recoder:
    """Generates recoded symbols from a partial sender's working set.

    Args:
        symbols: the sender's encoded symbols (payloads optional).
        max_degree: cap on constituent-list length (paper: 50).
        correlation: estimated ``c`` from a sketch; ``None`` means fully
            oblivious recoding (the plain "Recode" strategy).
        minwise_shift: apply the Recode/MW degree shift
            ``d -> floor(d / (1-c))`` instead of raising the lower limit.
        rng: randomness source (seeded by callers for reproducibility).
    """

    def __init__(
        self,
        symbols: Sequence[EncodedSymbol],
        max_degree: int = DEFAULT_MAX_RECODE_DEGREE,
        correlation: Optional[float] = None,
        minwise_shift: bool = False,
        rng: Optional[random.Random] = None,
    ):
        if not symbols:
            raise ValueError("cannot recode from an empty working set")
        if max_degree < 1:
            raise ValueError("max degree must be >= 1")
        self._symbols: List[EncodedSymbol] = list(symbols)
        self.max_degree = min(max_degree, len(self._symbols))
        self.correlation = correlation
        self.minwise_shift = minwise_shift
        self._rng = rng if rng is not None else default_rng("coding.recode")

        if correlation is not None and not minwise_shift:
            lower = min(
                optimal_recode_degree(len(self._symbols), correlation),
                self.max_degree,
            )
        else:
            lower = 1
        self._distribution = DegreeDistribution.recoding(lower, self.max_degree)

    def replace_symbols(self, symbols: Sequence[EncodedSymbol]) -> None:
        """Swap in an updated (e.g. Bloom-filtered) recoding domain."""
        if not symbols:
            raise ValueError("cannot recode from an empty working set")
        self._symbols = list(symbols)
        self.max_degree = min(self.max_degree, len(self._symbols))

    def _draw_degree(self) -> int:
        degree = self._distribution.sample(self._rng)
        if self.minwise_shift and self.correlation is not None:
            degree = self._distribution.shifted_for_correlation(
                degree, min(self.correlation, 0.999)
            )
        return min(degree, len(self._symbols))

    def next_symbol(self) -> RecodedSymbol:
        """Produce one recoded symbol."""
        degree = self._draw_degree()
        chosen = self._rng.sample(self._symbols, degree)
        payloads = [s.payload for s in chosen]
        payload = None
        if all(p is not None for p in payloads):
            payload = xor_payloads(payloads)  # type: ignore[arg-type]
        return RecodedSymbol(frozenset(s.symbol_id for s in chosen), payload)

    def stream(self) -> Iterable[RecodedSymbol]:
        """Endless recoded-symbol stream."""
        while True:
            yield self.next_symbol()
