"""Symbol types for encoded and recoded content.

Section 5.4.2: "An encoded symbol must specify the source blocks from
which it was generated; a recoded symbol must enumerate the encoded
symbols from which it was produced."  Both kinds carry that specification
explicitly, plus an optional byte payload — the delivery simulator runs
identity-only (payload ``None``) for speed, while the prototype protocol
ships real bytes.
"""

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional


def xor_payloads(payloads: Iterable[bytes]) -> bytes:
    """XOR equal-length byte strings together.

    Uses big-int XOR, which CPython executes in C — fast enough to encode
    the paper's 1400-byte blocks at tens of MB/s without numpy.
    """
    acc: Optional[int] = None
    length = -1
    for p in payloads:
        if acc is None:
            acc = int.from_bytes(p, "little")
            length = len(p)
        else:
            if len(p) != length:
                raise ValueError(
                    f"payload length mismatch: {len(p)} != {length}; "
                    "all blocks in a code must be fixed-length"
                )
            acc ^= int.from_bytes(p, "little")
    if acc is None:
        raise ValueError("cannot XOR zero payloads")
    return acc.to_bytes(length, "little")


@dataclass(frozen=True)
class EncodedSymbol:
    """One output symbol of the fountain code.

    Attributes:
        symbol_id: position in the (conceptually unbounded) encoding
            stream; doubles as the working-set key used by sketches,
            Bloom filters, and ARTs.
        source_indices: the source blocks XOR-ed to form the payload.
        payload: the XOR of those blocks, or ``None`` in identity-only
            simulations.
    """

    symbol_id: int
    source_indices: FrozenSet[int]
    payload: Optional[bytes] = None

    @property
    def degree(self) -> int:
        """Number of source blocks blended in (encode cost ∝ degree)."""
        return len(self.source_indices)

    def header_bytes(self, id_bits: int = 64) -> int:
        """Wire overhead of the composition metadata.

        Section 6.1 uses 64-bit degree-sequence representations; we model
        the header as the symbol id (seed for the neighbour PRNG) rather
        than an explicit index list, matching practical fountain codecs.
        """
        return id_bits // 8

    def __post_init__(self):
        if not self.source_indices:
            raise ValueError("an encoded symbol must cover >= 1 source block")
        if self.symbol_id < 0:
            raise ValueError("symbol ids are non-negative")


@dataclass(frozen=True)
class RecodedSymbol:
    """XOR of encoded symbols produced by a partial sender (§5.4.2).

    Attributes:
        constituent_ids: ids of the encoded symbols blended together;
            the receiver needs this list for the substitution rule.
        payload: XOR of the constituent payloads (``None`` in identity
            simulations).
    """

    constituent_ids: FrozenSet[int]
    payload: Optional[bytes] = None

    @property
    def degree(self) -> int:
        """Number of constituent encoded symbols."""
        return len(self.constituent_ids)

    def header_bytes(self, id_bits: int = 64) -> int:
        """Wire overhead: the constituent id list must travel explicitly."""
        return (id_bits // 8) * self.degree

    def __post_init__(self):
        if not self.constituent_ids:
            raise ValueError("a recoded symbol must cover >= 1 encoded symbol")
