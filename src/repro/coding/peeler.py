"""Receiver-side peeling of recoded symbols back to encoded symbols.

Section 5.4.2's example: a peer receiving ``z1 = y13``, ``z2 = y5 ⊕ y8``
and ``z3 = y5 ⊕ y13`` immediately recovers ``y13``, substitutes it into
``z3`` to recover ``y5``, then recovers ``y8`` from ``z2``.  This module
implements that substitution process over *encoded-symbol* identifiers,
one level above :class:`~repro.coding.decoder.PeelingDecoder` which peels
encoded symbols into source blocks.

"Recoded symbols which are not immediately useful are often eventually
useful" — the peeler keeps them pending until later arrivals reduce them.
"""

from typing import Dict, Iterable, List, Optional, Set

from repro.coding.symbol import EncodedSymbol, RecodedSymbol


class RecodedPeeler:
    """Tracks known encoded symbols and pending recoded symbols.

    Args:
        known_ids: encoded-symbol ids the receiver already holds.
        payloads: optional id -> payload map for payload-mode operation.

    Attributes:
        recoded_received: recoded symbols fed in.
        recoded_useless: arrivals whose constituents were all already
            known (fully redundant transmissions).
    """

    def __init__(
        self,
        known_ids: Iterable[int] = (),
        payloads: Optional[Dict[int, bytes]] = None,
    ):
        self._known: Set[int] = set(known_ids)
        self._payloads: Dict[int, bytes] = dict(payloads or {})
        self._pending_constituents: Dict[int, Set[int]] = {}
        self._pending_payload: Dict[int, Optional[bytes]] = {}
        self._waiting: Dict[int, Set[int]] = {}
        self._next_id = 0
        self.recoded_received = 0
        self.recoded_useless = 0

    # -- status ------------------------------------------------------------

    @property
    def known_ids(self) -> Set[int]:
        """Ids of encoded symbols now in the receiver's possession."""
        return set(self._known)

    @property
    def pending_count(self) -> int:
        """Recoded symbols still waiting for reduction."""
        return len(self._pending_constituents)

    def payload_of(self, symbol_id: int) -> Optional[bytes]:
        """Recovered payload of an encoded symbol, if tracked."""
        return self._payloads.get(symbol_id)

    # -- ingest ----------------------------------------------------------------

    def add_encoded(self, symbol_id: int, payload: Optional[bytes] = None) -> List[int]:
        """Receive a plain encoded symbol; returns newly recovered ids."""
        if symbol_id in self._known:
            return []
        self._know(symbol_id, payload)
        return [symbol_id] + self._reduce_waiters(symbol_id)

    def add_recoded(self, symbol: RecodedSymbol) -> List[int]:
        """Receive a recoded symbol; returns encoded ids newly recovered.

        A degree-1 recoded symbol is just an encoded symbol in disguise
        and resolves immediately; higher degrees resolve when all but one
        constituent is known, possibly triggering a cascade.
        """
        self.recoded_received += 1
        unknown = symbol.constituent_ids - self._known
        if not unknown:
            self.recoded_useless += 1
            return []
        payload = symbol.payload
        if payload is not None:
            for known_id in symbol.constituent_ids & self._known:
                kp = self._payloads.get(known_id)
                if kp is not None:
                    payload = _xor(payload, kp)
        pid = self._next_id
        self._next_id += 1
        self._pending_constituents[pid] = set(unknown)
        self._pending_payload[pid] = payload
        for cid in unknown:
            self._waiting.setdefault(cid, set()).add(pid)
        if len(unknown) == 1:
            return self._resolve(pid)
        return []

    # -- internals -----------------------------------------------------------------

    def _know(self, symbol_id: int, payload: Optional[bytes]) -> None:
        self._known.add(symbol_id)
        if payload is not None:
            self._payloads[symbol_id] = payload

    def _resolve(self, pid: int) -> List[int]:
        recovered: List[int] = []
        frontier = [pid]
        while frontier:
            cur = frontier.pop()
            constituents = self._pending_constituents.get(cur)
            if constituents is None or len(constituents) != 1:
                continue
            new_id = next(iter(constituents))
            new_payload = self._pending_payload.get(cur)
            self._drop(cur)
            if new_id in self._known:
                continue
            self._know(new_id, new_payload)
            recovered.append(new_id)
            frontier.extend(self._reduce_ids(new_id, collect_frontier=True))
        return recovered

    def _reduce_waiters(self, symbol_id: int) -> List[int]:
        """Substitute a newly known encoded symbol into pending recodes."""
        recovered: List[int] = []
        for pid in self._reduce_ids(symbol_id, collect_frontier=True):
            recovered.extend(self._resolve(pid))
        return recovered

    def _reduce_ids(self, symbol_id: int, collect_frontier: bool) -> List[int]:
        ready: List[int] = []
        for pid in list(self._waiting.pop(symbol_id, ())):
            constituents = self._pending_constituents.get(pid)
            if constituents is None:
                continue
            constituents.discard(symbol_id)
            payload = self._payloads.get(symbol_id)
            if payload is not None:
                current = self._pending_payload[pid]
                if current is not None:
                    self._pending_payload[pid] = _xor(current, payload)
            if len(constituents) == 1:
                ready.append(pid)
            elif not constituents:
                self._drop(pid)
        return ready if collect_frontier else []

    def _drop(self, pid: int) -> None:
        constituents = self._pending_constituents.pop(pid, None)
        self._pending_payload.pop(pid, None)
        if constituents:
            for cid in constituents:
                waiters = self._waiting.get(cid)
                if waiters is not None:
                    waiters.discard(pid)
                    if not waiters:
                        del self._waiting[cid]

    def as_encoded_symbols(
        self, reference: Dict[int, EncodedSymbol]
    ) -> List[EncodedSymbol]:
        """Materialise known ids as encoded symbols via a reference map."""
        return [reference[i] for i in self._known if i in reference]


def _xor(a: bytes, b: bytes) -> bytes:
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")).to_bytes(
        len(a), "little"
    )
