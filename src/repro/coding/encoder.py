"""Memoryless LT-style encoder (digital fountain).

Section 5.4.1: "an encoding is a memoryless encoding if the random subset
of source blocks used to produce each encoding symbol is generated
identically and independently from the same distribution."  We realise
memorylessness by deriving each symbol's degree and neighbour set from a
PRNG seeded with ``(stream_seed, symbol_id)``:

* A full sender can regenerate any symbol from its id alone — encoding is
  *stateless* and the stream *time-invariant* (Section 2.3).
* Two encoders with the same ``stream_seed`` define the same symbol
  universe, so a symbol id is a globally meaningful working-set key.
* Encoders with different seeds are uncorrelated fountains — the
  *additivity* property for parallel downloads from full senders.
"""

import random
from typing import Iterator, List, Optional, Sequence

from repro.coding.degree import DegreeDistribution
from repro.coding.symbol import EncodedSymbol, xor_payloads
from repro.hashing.mix import mix64


class LTEncoder:
    """Produces :class:`EncodedSymbol` streams from source blocks.

    Args:
        num_blocks: ``l``, the number of source blocks.
        distribution: degree distribution; defaults to the heavy-tail
            heuristic of Section 6.1.
        stream_seed: identifies the fountain; symbols are a pure function
            of ``(stream_seed, symbol_id)``.
        source_blocks: optional actual content (equal-length ``bytes``).
            Omit for identity-only simulation.
    """

    def __init__(
        self,
        num_blocks: int,
        distribution: Optional[DegreeDistribution] = None,
        stream_seed: int = 0,
        source_blocks: Optional[Sequence[bytes]] = None,
    ):
        if num_blocks < 1:
            raise ValueError("need at least one source block")
        if source_blocks is not None:
            if len(source_blocks) != num_blocks:
                raise ValueError(
                    f"got {len(source_blocks)} blocks, expected {num_blocks}"
                )
            lengths = {len(b) for b in source_blocks}
            if len(lengths) > 1:
                raise ValueError("source blocks must be fixed-length")
        self.num_blocks = num_blocks
        self.distribution = distribution or DegreeDistribution.heavy_tail_heuristic(
            num_blocks
        )
        if self.distribution.max_degree() > num_blocks:
            raise ValueError("degree distribution exceeds the block count")
        self.stream_seed = stream_seed
        self.source_blocks = list(source_blocks) if source_blocks is not None else None

    @classmethod
    def from_content(
        cls,
        content: bytes,
        block_size: int,
        distribution: Optional[DegreeDistribution] = None,
        stream_seed: int = 0,
    ) -> "LTEncoder":
        """Split ``content`` into ``block_size`` chunks (zero-padded) and encode.

        This mirrors the paper's setup: "A 32MB test file was divided into
        23,968 source blocks of 1400 bytes".
        """
        if block_size < 1:
            raise ValueError("block size must be positive")
        if not content:
            raise ValueError("content must be non-empty")
        blocks: List[bytes] = []
        for off in range(0, len(content), block_size):
            chunk = content[off : off + block_size]
            if len(chunk) < block_size:
                chunk = chunk + b"\x00" * (block_size - len(chunk))
            blocks.append(chunk)
        return cls(
            len(blocks),
            distribution=distribution,
            stream_seed=stream_seed,
            source_blocks=blocks,
        )

    # -- symbol generation ------------------------------------------------

    def neighbours(self, symbol_id: int) -> frozenset:
        """The source-block subset for ``symbol_id`` (pure function)."""
        if symbol_id < 0:
            raise ValueError("symbol ids are non-negative")
        rng = random.Random(mix64(symbol_id, self.stream_seed))
        degree = self.distribution.sample(rng)
        return frozenset(rng.sample(range(self.num_blocks), degree))

    def symbol(self, symbol_id: int) -> EncodedSymbol:
        """Materialise one encoded symbol (with payload if content loaded)."""
        indices = self.neighbours(symbol_id)
        payload = None
        if self.source_blocks is not None:
            payload = xor_payloads(self.source_blocks[i] for i in sorted(indices))
        return EncodedSymbol(symbol_id, indices, payload)

    def stream(self, start_id: int = 0) -> Iterator[EncodedSymbol]:
        """Endless encoding stream — the digital fountain."""
        symbol_id = start_id
        while True:
            yield self.symbol(symbol_id)
            symbol_id += 1

    def symbols(self, ids: Sequence[int]) -> List[EncodedSymbol]:
        """Materialise a batch of symbols by id."""
        return [self.symbol(i) for i in ids]
