"""Peeling decoder with the substitution rule of [16].

Maintains a set of recovered source blocks and a graph of pending symbols.
Whenever a symbol's unresolved neighbour set drops to one block, that
block is recovered and substituted into every other pending symbol that
references it — the ripple.  Decoding cost is proportional to the total
degree of the symbols consumed, as Section 5.4.1 states.
"""

from typing import Dict, Iterable, List, Optional, Set

from repro.coding.symbol import EncodedSymbol


class PeelingDecoder:
    """Incremental decoder for sparse parity-check encoded symbols.

    Args:
        num_blocks: ``l``, the number of source blocks to recover.
        track_payloads: when False, runs identity-only (no XOR work) —
            used by the delivery simulator where only decodability
            matters.

    Attributes:
        symbols_received: total symbols fed in.
        symbols_useless: symbols that were fully redundant on arrival
            (every neighbour already recovered).
    """

    def __init__(self, num_blocks: int, track_payloads: bool = True):
        if num_blocks < 1:
            raise ValueError("need at least one source block")
        self.num_blocks = num_blocks
        self.track_payloads = track_payloads
        self._recovered: Dict[int, Optional[bytes]] = {}
        # pending symbol id -> (unresolved neighbour set, payload accumulator)
        self._pending_neighbours: Dict[int, Set[int]] = {}
        self._pending_payload: Dict[int, Optional[bytes]] = {}
        # block index -> ids of pending symbols waiting on it
        self._waiting: Dict[int, Set[int]] = {}
        self._next_internal_id = 0
        self.symbols_received = 0
        self.symbols_useless = 0

    # -- status -----------------------------------------------------------

    @property
    def recovered_count(self) -> int:
        """Number of source blocks recovered so far."""
        return len(self._recovered)

    @property
    def is_complete(self) -> bool:
        """True once every source block is recovered."""
        return len(self._recovered) == self.num_blocks

    def recovered_blocks(self) -> Dict[int, Optional[bytes]]:
        """Mapping of recovered block index -> payload (or None)."""
        return dict(self._recovered)

    def decoded_content(self, trim_to: Optional[int] = None) -> bytes:
        """Reassemble the original content (payload mode only).

        Args:
            trim_to: cut the concatenation to this many bytes (undo the
                encoder's final-block zero padding).

        Raises:
            RuntimeError: if decoding is incomplete or payload-free.
        """
        if not self.is_complete:
            raise RuntimeError(
                f"decoding incomplete: {self.recovered_count}/{self.num_blocks}"
            )
        if not self.track_payloads:
            raise RuntimeError("decoder was run in identity-only mode")
        parts = []
        for i in range(self.num_blocks):
            payload = self._recovered[i]
            if payload is None:
                raise RuntimeError(f"block {i} recovered without payload")
            parts.append(payload)
        content = b"".join(parts)
        return content[:trim_to] if trim_to is not None else content

    # -- decoding -------------------------------------------------------------

    def add_symbol(self, symbol: EncodedSymbol) -> List[int]:
        """Consume one encoded symbol; return newly recovered block indices."""
        self.symbols_received += 1
        unresolved = set(symbol.source_indices) - self._recovered.keys()
        payload = symbol.payload if self.track_payloads else None
        if self.track_payloads and symbol.payload is not None:
            # Substitute already-recovered blocks out of the payload.
            resolved = symbol.source_indices & self._recovered.keys()
            for idx in resolved:
                block = self._recovered[idx]
                if block is not None:
                    payload = _xor(payload, block)
        if not unresolved:
            self.symbols_useless += 1
            return []
        internal_id = self._next_internal_id
        self._next_internal_id += 1
        self._pending_neighbours[internal_id] = unresolved
        self._pending_payload[internal_id] = payload
        for idx in unresolved:
            self._waiting.setdefault(idx, set()).add(internal_id)
        return self._ripple(internal_id)

    def add_symbols(self, symbols: Iterable[EncodedSymbol]) -> List[int]:
        """Consume a batch; return all newly recovered block indices."""
        recovered: List[int] = []
        for s in symbols:
            recovered.extend(self.add_symbol(s))
        return recovered

    # -- internals ------------------------------------------------------------

    def _ripple(self, start_id: int) -> List[int]:
        """Run the substitution rule from one candidate symbol."""
        newly_recovered: List[int] = []
        frontier = [start_id]
        while frontier:
            sid = frontier.pop()
            neighbours = self._pending_neighbours.get(sid)
            if neighbours is None or len(neighbours) != 1:
                continue
            block_idx = next(iter(neighbours))
            block_payload = self._pending_payload.get(sid)
            self._drop_pending(sid)
            if block_idx in self._recovered:
                continue
            self._recovered[block_idx] = block_payload
            newly_recovered.append(block_idx)
            # Substitute into every symbol waiting on this block.
            for waiter in list(self._waiting.pop(block_idx, ())):
                w_neigh = self._pending_neighbours.get(waiter)
                if w_neigh is None:
                    continue
                w_neigh.discard(block_idx)
                if self.track_payloads and block_payload is not None:
                    current = self._pending_payload[waiter]
                    if current is not None:
                        self._pending_payload[waiter] = _xor(current, block_payload)
                if len(w_neigh) == 1:
                    frontier.append(waiter)
                elif not w_neigh:
                    self._drop_pending(waiter)
        return newly_recovered

    # -- Gaussian fallback (inactivation decoding) ---------------------------

    def solve_remaining(self) -> List[int]:
        """Finish decoding by GF(2) elimination over the pending symbols.

        Peeling alone needs a few percent of extra symbols and stalls
        abruptly at small block counts; practical fountain codecs finish
        the tail with Gaussian elimination (inactivation decoding), which
        is how implementations reach the paper's "3-5% more than the
        number of symbols in the original file".  Cost is cubic in the
        number of *unresolved* blocks only, so calling it after peeling
        is cheap in the common case.

        Returns newly recovered block indices (possibly empty if the
        pending system is underdetermined).
        """
        if not self._pending_neighbours:
            return []
        unknowns = sorted({b for ns in self._pending_neighbours.values() for b in ns})
        pos = {b: i for i, b in enumerate(unknowns)}
        # Forward elimination with lowest-set-bit pivoting.
        pivots: Dict[int, List] = {}  # pivot bit index -> [mask, payload]
        for sid, neighbours in self._pending_neighbours.items():
            mask = 0
            for b in neighbours:
                mask |= 1 << pos[b]
            payload = self._pending_payload.get(sid)
            while mask:
                low = (mask & -mask).bit_length() - 1
                if low not in pivots:
                    pivots[low] = [mask, payload]
                    break
                pmask, ppayload = pivots[low]
                mask ^= pmask
                if payload is not None and ppayload is not None:
                    payload = _xor(payload, ppayload)
                else:
                    payload = None
        # Back-substitution from the highest pivot down: a row's non-pivot
        # bits are all higher than its pivot, hence already processed.
        solved: Dict[int, Optional[bytes]] = {}
        for bit in sorted(pivots, reverse=True):
            mask, payload = pivots[bit]
            rest = mask & ~(1 << bit)
            determined = True
            while rest:
                high = (rest & -rest).bit_length() - 1
                rest &= rest - 1
                if high not in solved:
                    determined = False
                    break
                other = solved[high]
                if payload is not None and other is not None:
                    payload = _xor(payload, other)
                else:
                    payload = None
            if determined:
                solved[bit] = payload
        newly: List[int] = []
        for bit, payload in solved.items():
            block_idx = unknowns[bit]
            if block_idx in self._recovered:
                continue
            self._recovered[block_idx] = payload if self.track_payloads else None
            newly.append(block_idx)
            # Substitute into remaining pending symbols so decoder state
            # stays consistent for any symbols that arrive later.
            for waiter in list(self._waiting.pop(block_idx, ())):
                w_neigh = self._pending_neighbours.get(waiter)
                if w_neigh is None:
                    continue
                w_neigh.discard(block_idx)
                if self.track_payloads and payload is not None:
                    current = self._pending_payload[waiter]
                    if current is not None:
                        self._pending_payload[waiter] = _xor(current, payload)
                if not w_neigh:
                    self._drop_pending(waiter)
        # Any pending symbol now down to one unknown can ripple normally.
        for sid in [
            s for s, ns in self._pending_neighbours.items() if len(ns) == 1
        ]:
            newly.extend(self._ripple(sid))
        return newly

    def _drop_pending(self, sid: int) -> None:
        neighbours = self._pending_neighbours.pop(sid, None)
        self._pending_payload.pop(sid, None)
        if neighbours:
            for idx in neighbours:
                waiters = self._waiting.get(idx)
                if waiters is not None:
                    waiters.discard(sid)
                    if not waiters:
                        del self._waiting[idx]


def _xor(a: Optional[bytes], b: bytes) -> Optional[bytes]:
    if a is None:
        return None
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")).to_bytes(
        len(a), "little"
    )
