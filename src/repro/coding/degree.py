"""Degree distributions for sparse parity-check codes.

Section 5.4.1: "the distribution of the size of the subsets chosen for
encoding is irregular; a heavy-tailed distribution was proven to be a good
choice in [16]".  We provide:

* :meth:`DegreeDistribution.ideal_soliton` — the textbook baseline
  (fragile in practice; kept for the ablation bench).
* :meth:`DegreeDistribution.robust_soliton` — Luby's robust soliton.
* :meth:`DegreeDistribution.heavy_tail_heuristic` — our stand-in for the
  authors' unpublished tuned distribution ("average degree of 11 ...
  average decoding overhead of 6.8%", Section 6.1): a robust soliton
  truncated at a degree cap, renormalised, with the spike preserved.
* :meth:`DegreeDistribution.recoding` — Section 5.4.2's bounded irregular
  distribution for recoded symbols: supported on ``[d_min, d_max]``
  (the paper uses a limit of 50 to keep constituent lists short), heavy
  tailed, avoiding low degrees "which may provide short-term benefit, but
  which are often useless".
"""

import bisect
import itertools
import math
import random
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple


class DegreeDistribution:
    """An immutable probability distribution over symbol degrees.

    Attributes:
        degrees: the support, ascending.
        probabilities: matching probabilities (sum to 1).
    """

    def __init__(self, weights: Dict[int, float]):
        if not weights:
            raise ValueError("distribution needs at least one degree")
        cleaned = {d: w for d, w in weights.items() if w > 0}
        if not cleaned:
            raise ValueError("all weights are zero")
        for d in cleaned:
            if d < 1:
                raise ValueError(f"degrees must be >= 1, got {d}")
        total = math.fsum(cleaned.values())
        self.degrees: Tuple[int, ...] = tuple(sorted(cleaned))
        self.probabilities: Tuple[float, ...] = tuple(
            cleaned[d] / total for d in self.degrees
        )
        self._cumulative: List[float] = list(
            itertools.accumulate(self.probabilities)
        )
        self._cumulative[-1] = 1.0  # guard against fp drift

    # -- constructors ---------------------------------------------------

    @classmethod
    def ideal_soliton(cls, num_blocks: int) -> "DegreeDistribution":
        """``rho(1) = 1/l``, ``rho(d) = 1/(d(d-1))`` for ``d = 2..l``."""
        if num_blocks < 1:
            raise ValueError("need at least one source block")
        weights = {1: 1.0 / num_blocks}
        for d in range(2, num_blocks + 1):
            weights[d] = 1.0 / (d * (d - 1))
        return cls(weights)

    @classmethod
    def robust_soliton(
        cls, num_blocks: int, c: float = 0.03, delta: float = 0.5
    ) -> "DegreeDistribution":
        """Luby's robust soliton ``mu = (rho + tau) / beta``.

        Args:
            num_blocks: ``l``, the number of source blocks.
            c: the tuning constant controlling the ripple size.
            delta: decoder failure probability bound.
        """
        if num_blocks < 1:
            raise ValueError("need at least one source block")
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        if c <= 0:
            raise ValueError("c must be positive")
        l = num_blocks
        ripple = c * math.log(l / delta) * math.sqrt(l)
        pivot = max(1, int(round(l / ripple))) if ripple > 0 else l
        pivot = min(pivot, l)
        weights: Dict[int, float] = {1: 1.0 / l}
        for d in range(2, l + 1):
            weights[d] = 1.0 / (d * (d - 1))
        # tau: the robust additions — uniform boost below the pivot plus a
        # spike at the pivot that guarantees a large-degree symbol exists.
        for d in range(1, pivot):
            weights[d] = weights.get(d, 0.0) + ripple / (d * l)
        if ripple > delta:
            weights[pivot] = weights.get(pivot, 0.0) + ripple * math.log(
                ripple / delta
            ) / l
        return cls(weights)

    @classmethod
    def heavy_tail_heuristic(
        cls, num_blocks: int, max_degree: int = 0
    ) -> "DegreeDistribution":
        """The Section 6.1 stand-in: robust soliton truncated at a cap.

        At the paper's file scale (~24k blocks) this yields an average
        degree near 11-12 and empirical decoding overhead in the 5-8%
        band — matching the numbers the authors report for their tuned
        distribution.  ``max_degree=0`` defaults the cap to the robust
        soliton's spike location ``l/R`` (so the completion-critical
        spike survives); tail mass beyond the cap is reassigned to the
        cap via :meth:`truncated`.
        """
        base = cls.robust_soliton(num_blocks)
        if max_degree <= 0:
            c, delta = 0.03, 0.5
            ripple = c * math.log(num_blocks / delta) * math.sqrt(num_blocks)
            max_degree = (
                max(1, int(round(num_blocks / ripple))) if ripple > 0 else num_blocks
            )
        return base.truncated(1, min(max_degree, num_blocks))

    @classmethod
    def recoding(cls, min_degree: int, max_degree: int) -> "DegreeDistribution":
        """Bounded heavy-tail distribution for recoded symbols (§5.4.2).

        Mass ``∝ 1/(d (d+1))`` over ``[min_degree, max_degree]``: irregular,
        tails off slowly enough that high-degree symbols appear, and never
        generates degrees below the caller's usefulness-optimal lower
        limit.
        """
        if min_degree < 1:
            raise ValueError("minimum degree must be >= 1")
        if max_degree < min_degree:
            raise ValueError("max_degree must be >= min_degree")
        return cls({d: 1.0 / (d * (d + 1)) for d in range(min_degree, max_degree + 1)})

    @classmethod
    def fixed(cls, degree: int) -> "DegreeDistribution":
        """Degenerate distribution (ablation baseline)."""
        return cls({degree: 1.0})

    @classmethod
    def recoding_soliton(
        cls, domain_size: int, min_degree: int = 1, max_degree: int = 50
    ) -> "DegreeDistribution":
        """Section 6.1's recoding distribution: soliton-like, degree cap 50.

        "The degree distribution for recoding was created similarly [to
        the main code's] with a degree limit of 50."  We take the robust
        soliton over the recoding domain and clamp it to
        ``[min_degree, max_degree]`` — the lower clamp implements the
        Section 5.4.2 usefulness lower limit ``d*``.
        """
        if domain_size < 1:
            raise ValueError("recoding domain must be non-empty")
        max_degree = max(1, min(max_degree, domain_size))
        min_degree = max(1, min(min_degree, max_degree))
        return _recoding_soliton_cached(domain_size, min_degree, max_degree)

    def truncated(self, min_degree: int, max_degree: int) -> "DegreeDistribution":
        """Restrict support to ``[min_degree, max_degree]`` and renormalise.

        Out-of-range mass is reassigned to the nearest in-range degree
        (not dropped), so a truncated soliton keeps both its degree-1
        bootstrap mass and a remnant of its high-degree spike.
        """
        if max_degree < min_degree:
            raise ValueError("max_degree must be >= min_degree")
        weights: Dict[int, float] = {}
        for d, p in zip(self.degrees, self.probabilities):
            clamped = min(max(d, min_degree), max_degree)
            weights[clamped] = weights.get(clamped, 0.0) + p
        return DegreeDistribution(weights)

    # -- queries -------------------------------------------------------------

    def sample(self, rng: random.Random) -> int:
        """Draw one degree."""
        return self.degrees[bisect.bisect_left(self._cumulative, rng.random())]

    def sample_many(self, count: int, rng: random.Random) -> List[int]:
        """Draw ``count`` degrees (convenience for tests and stats)."""
        return [self.sample(rng) for _ in range(count)]

    def mean(self) -> float:
        """Average degree — proportional to encode/decode cost (§5.4.1)."""
        return math.fsum(d * p for d, p in zip(self.degrees, self.probabilities))

    def max_degree(self) -> int:
        return self.degrees[-1]

    def probability_of(self, degree: int) -> float:
        """Probability mass at ``degree`` (0 if outside support)."""
        i = bisect.bisect_left(self.degrees, degree)
        if i < len(self.degrees) and self.degrees[i] == degree:
            return self.probabilities[i]
        return 0.0

    def shifted_for_correlation(
        self, sampled_degree: int, correlation: float
    ) -> int:
        """The Recode/MW adjustment: degree ``floor(d / (1 - c))``, capped.

        Section 6.2: "If the regular recoding algorithm randomly generates
        a degree d symbol, generate a recoded symbol of degree
        floor(d / (1 - c)), subject to the maximum degree."
        """
        if not 0.0 <= correlation < 1.0:
            # c == 1 means identical sets; no degree makes a useful symbol.
            raise ValueError("correlation must lie in [0, 1)")
        return min(self.max_degree(), int(sampled_degree / (1.0 - correlation)))


@lru_cache(maxsize=4096)
def _recoding_soliton_cached(
    domain_size: int, min_degree: int, max_degree: int
) -> DegreeDistribution:
    """Shared recoding distributions, keyed by clamped parameters.

    Construction is deterministic and instances are immutable with a
    stateless :meth:`DegreeDistribution.sample`, so every Recode
    strategy with the same domain size can share one table instead of
    rebuilding the robust soliton per connection.
    """
    if domain_size == 1:
        return DegreeDistribution.fixed(1)
    base = DegreeDistribution.robust_soliton(domain_size)
    return base.truncated(min_degree, max_degree)
