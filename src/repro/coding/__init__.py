"""Sparse parity-check erasure codes and recoding (paper Section 5.4).

The digital-fountain substrate everything else rides on:

* :class:`DegreeDistribution` — ideal/robust soliton and the paper's
  heavy-tail heuristic (Section 6.1: average degree ~11, decoding
  overhead ~7%), plus the bounded recoding distribution of Section 5.4.2.
* :class:`EncodedSymbol` / :class:`RecodedSymbol` — symbols and their
  composition metadata (source-block lists / constituent-symbol lists).
* :class:`LTEncoder` — memoryless encoder: symbol ``i``'s neighbour set is
  a pure function of ``(seed, i)``, so independently seeded fountains are
  uncorrelated (the paper's *additivity*) while a shared seed gives all
  peers a common symbol universe keyed by ``symbol_id``.
* :class:`PeelingDecoder` — the substitution-rule decoder of [16].
* :class:`Recoder` / :class:`RecodedPeeler` — Section 5.4.2: partial
  senders blend received symbols into recoded symbols; receivers peel
  recoded symbols back to encoded symbols, then decode normally.
"""

from repro.coding.degree import DegreeDistribution
from repro.coding.symbol import EncodedSymbol, RecodedSymbol, xor_payloads
from repro.coding.encoder import LTEncoder
from repro.coding.decoder import PeelingDecoder
from repro.coding.recode import Recoder, optimal_recode_degree
from repro.coding.peeler import RecodedPeeler

__all__ = [
    "DegreeDistribution",
    "EncodedSymbol",
    "RecodedSymbol",
    "xor_payloads",
    "LTEncoder",
    "PeelingDecoder",
    "Recoder",
    "RecodedPeeler",
    "optimal_recode_degree",
]
